//! The serializable request/response surface of `aced`.
//!
//! Everything a client can ask and everything the daemon can answer
//! lives here as plain data with hand-written [`Json`] conversions.
//! The in-process types these mirror ([`ExtractOptions`],
//! [`LintConfig`], [`LayoutDiff`]) stay the single source of truth —
//! this module only defines the *wire* shape: stable field names,
//! stable enum spellings (the same kebab-case names the CLI already
//! uses), and integer-only numbers, so the golden-bytes test can pin
//! the exact encoding.
//!
//! Every message is an envelope object `{"v":1,"id":N,...}`:
//! requests carry `"op"` plus operands, responses carry `"ok"` plus
//! a result (or `"error"`). The `id` is an opaque client-chosen
//! correlation number echoed back verbatim.
//!
//! # Examples
//!
//! ```
//! use ace_service::protocol::{decode_request, encode_request, Request};
//!
//! let bytes = encode_request(7, &Request::Status);
//! let (id, back) = decode_request(&bytes).unwrap();
//! assert_eq!(id, 7);
//! assert_eq!(back, Request::Status);
//! ```

use std::fmt;

use ace_core::{ExtractOptions, SortStrategy};
use ace_geom::{Layer, Point, Rect};
use ace_layout::{FlatLabel, LayoutDiff};
use ace_lint::{Diagnostic, LintConfig, RuleId, Severity};

use crate::json::Json;

/// Wire protocol version; bumped on any incompatible change.
pub const PROTOCOL_VERSION: i64 = 1;

/// A malformed or unsupported protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// What was wrong with the message.
    pub message: String,
}

impl ProtoError {
    fn new(message: impl Into<String>) -> ProtoError {
        ProtoError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "protocol error: {}", self.message)
    }
}

impl std::error::Error for ProtoError {}

/// Stable machine-readable error codes, mirrored in
/// [`ServiceError::code`]. Codes are part of the wire format: clients
/// dispatch on them, so existing spellings never change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request was syntactically valid JSON but semantically
    /// malformed (unknown op, missing field, bad enum spelling).
    BadRequest,
    /// The session's CIF source failed to parse.
    ParseError,
    /// The named session does not exist (or was closed/evicted).
    UnknownSession,
    /// `open` named a session that already exists.
    SessionExists,
    /// Extraction itself failed (inconsistent options, layout error).
    ExtractFailed,
    /// An `edit-diff` removal named geometry the layout lacks.
    DiffFailed,
    /// The target shard's queue is full; retry after
    /// [`ServiceError::retry_after_ms`].
    QueueFull,
    /// The request exceeded the daemon's per-request deadline.
    Timeout,
    /// The daemon is draining for shutdown and accepts no new work.
    ShuttingDown,
    /// Unexpected daemon-side failure.
    Internal,
}

impl ErrorCode {
    /// All codes, in a fixed order (for tests and docs).
    pub const ALL: [ErrorCode; 10] = [
        ErrorCode::BadRequest,
        ErrorCode::ParseError,
        ErrorCode::UnknownSession,
        ErrorCode::SessionExists,
        ErrorCode::ExtractFailed,
        ErrorCode::DiffFailed,
        ErrorCode::QueueFull,
        ErrorCode::Timeout,
        ErrorCode::ShuttingDown,
        ErrorCode::Internal,
    ];

    /// The stable kebab-case wire spelling.
    pub const fn name(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::ParseError => "parse-error",
            ErrorCode::UnknownSession => "unknown-session",
            ErrorCode::SessionExists => "session-exists",
            ErrorCode::ExtractFailed => "extract-failed",
            ErrorCode::DiffFailed => "diff-failed",
            ErrorCode::QueueFull => "queue-full",
            ErrorCode::Timeout => "timeout",
            ErrorCode::ShuttingDown => "shutting-down",
            ErrorCode::Internal => "internal",
        }
    }

    /// Parses a wire spelling as printed by [`ErrorCode::name`].
    pub fn from_name(name: &str) -> Option<ErrorCode> {
        ErrorCode::ALL.into_iter().find(|c| c.name() == name)
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A request the daemon refused or failed, as sent to the client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceError {
    /// Machine-dispatchable failure class.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
    /// For [`ErrorCode::QueueFull`]: how long the client should wait
    /// before retrying, in milliseconds.
    pub retry_after_ms: Option<i64>,
}

impl ServiceError {
    /// An error with no retry hint.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> ServiceError {
        ServiceError {
            code,
            message: message.into(),
            retry_after_ms: None,
        }
    }

    /// Attaches a retry-after hint (backpressure responses).
    pub fn with_retry_after_ms(mut self, ms: i64) -> ServiceError {
        self.retry_after_ms = Some(ms);
        self
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.message)?;
        if let Some(ms) = self.retry_after_ms {
            write!(f, " (retry after {ms} ms)")?;
        }
        Ok(())
    }
}

impl std::error::Error for ServiceError {}

/// Everything a client can ask `aced`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Creates a session: parse `cif`, flatten it, and keep an
    /// incremental extractor with `bands` bands resident under
    /// `session`.
    Open {
        /// Client-chosen session name.
        session: String,
        /// CIF source text of the library to keep resident.
        cif: String,
        /// Incremental band count (0 picks the daemon default).
        bands: usize,
        /// Extraction options applied to every run in this session.
        options: ExtractOptions,
    },
    /// Extracts the session's current layout (cache-warm after the
    /// first run).
    Extract {
        /// Target session.
        session: String,
    },
    /// Applies a layout edit to the session and re-extracts; only
    /// dirty bands are re-swept.
    EditDiff {
        /// Target session.
        session: String,
        /// The edit, as a multiset delta.
        diff: LayoutDiff,
    },
    /// Runs the ERC rule engine over the session's current circuit.
    Lint {
        /// Target session.
        session: String,
        /// Rule enablement/severity and parameters.
        config: LintConfig,
    },
    /// Looks one net up by name in the session's current netlist.
    QueryNet {
        /// Target session.
        session: String,
        /// The net name (a CIF `94` label).
        net: String,
    },
    /// Drops a session and frees its caches.
    Close {
        /// Target session.
        session: String,
    },
    /// Daemon-wide statistics (sessions, cache bytes, pool counters).
    Status,
}

impl Request {
    /// The wire spelling of this request's `op` field.
    pub const fn op(&self) -> &'static str {
        match self {
            Request::Open { .. } => "open",
            Request::Extract { .. } => "extract",
            Request::EditDiff { .. } => "edit-diff",
            Request::Lint { .. } => "lint",
            Request::QueryNet { .. } => "query-net",
            Request::Close { .. } => "close",
            Request::Status => "status",
        }
    }

    /// The session this request targets, if any (`Status` has none).
    pub fn session(&self) -> Option<&str> {
        match self {
            Request::Open { session, .. }
            | Request::Extract { session }
            | Request::EditDiff { session, .. }
            | Request::Lint { session, .. }
            | Request::QueryNet { session, .. }
            | Request::Close { session } => Some(session),
            Request::Status => None,
        }
    }
}

/// Per-request extraction statistics, a wire-stable subset of
/// [`ace_core::ExtractionReport`] (times flattened to nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireReport {
    /// Boxes swept.
    pub boxes: i64,
    /// Scanline stops made.
    pub scanline_stops: i64,
    /// Net union operations.
    pub net_unions: i64,
    /// Bands answered from the incremental cache.
    pub bands_reused: i64,
    /// Bands re-swept because their content changed.
    pub bands_reswept: i64,
    /// Bytes held by the session's band cache after this request.
    pub cache_bytes: i64,
    /// ERC diagnostics emitted (lint requests only).
    pub lints_emitted: i64,
    /// Wall-clock time, nanoseconds.
    pub total_ns: i64,
}

/// A successful `extract` / `edit-diff` answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtractResult {
    /// The circuit in CMU wirelist text form — parse it back with
    /// `ace_wirelist::parse_wirelist`.
    pub wirelist: String,
    /// Per-request statistics.
    pub report: WireReport,
}

/// One ERC finding, flattened for the wire (rule + severity survive
/// exactly; spans are carried in the pre-rendered text form).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireDiagnostic {
    /// The rule that fired.
    pub rule: RuleId,
    /// Effective severity after config overrides.
    pub severity: Severity,
    /// Human-readable description of the finding.
    pub message: String,
    /// The canonical one-line render (`severity[rule] @ anchor: …`),
    /// identical to the in-process [`Diagnostic::render`].
    pub rendered: String,
}

impl From<&Diagnostic> for WireDiagnostic {
    fn from(d: &Diagnostic) -> WireDiagnostic {
        WireDiagnostic {
            rule: d.rule,
            severity: d.severity,
            message: d.message.clone(),
            rendered: d.render(),
        }
    }
}

/// A `query-net` answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetInfo {
    /// The queried name.
    pub net: String,
    /// Whether the name resolved to a net.
    pub found: bool,
    /// All names on the resolved net (empty when not found).
    pub names: Vec<String>,
    /// Devices whose gate is on this net.
    pub gates: i64,
    /// Device source/drain terminals on this net.
    pub terminals: i64,
    /// Wire capacitance to ground under the default NMOS parameter
    /// table, attofarads (0 when not found).
    pub cap_af: i64,
    /// End-to-end segment-resistance estimate, milliohms (0 when not
    /// found).
    pub res_mohm: i64,
}

/// A `status` answer: daemon-wide gauges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStatus {
    /// Resident sessions.
    pub sessions: i64,
    /// Total bytes held by all session caches (the CacheBytes gauge
    /// the evictor works against).
    pub cache_bytes: i64,
    /// Session caches reclaimed by the memory-budget evictor.
    pub evictions: i64,
    /// Jobs the worker pool has completed.
    pub executed: i64,
    /// Jobs run by a worker other than the target shard's owner.
    pub stolen: i64,
    /// Jobs currently queued across all shards.
    pub queued: i64,
    /// Worker threads serving requests.
    pub workers: i64,
}

/// Everything the daemon can answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// `open` succeeded.
    Opened {
        /// The session name, echoed.
        session: String,
        /// The band count actually used.
        bands: usize,
    },
    /// `extract` / `edit-diff` succeeded.
    Extracted(ExtractResult),
    /// `lint` succeeded.
    Linted {
        /// Findings in canonical report order.
        diagnostics: Vec<WireDiagnostic>,
        /// Per-request statistics (including `lints_emitted`).
        report: WireReport,
    },
    /// `query-net` succeeded (even when the net was not found —
    /// check [`NetInfo::found`]).
    Net(NetInfo),
    /// `close` succeeded.
    Closed {
        /// The session name, echoed.
        session: String,
        /// Whether the session existed.
        existed: bool,
    },
    /// `status` succeeded.
    Status(ServiceStatus),
    /// The request failed; see [`ServiceError::code`].
    Error(ServiceError),
}

// ---------------------------------------------------------------------------
// Json conversions: geometry and layout vocabulary
// ---------------------------------------------------------------------------

fn rect_to_json(r: Rect) -> Json {
    Json::Arr(vec![
        Json::Int(r.x_min),
        Json::Int(r.y_min),
        Json::Int(r.x_max),
        Json::Int(r.y_max),
    ])
}

fn rect_from_json(v: &Json) -> Result<Rect, ProtoError> {
    let items = v
        .as_arr()
        .filter(|a| a.len() == 4)
        .ok_or_else(|| ProtoError::new("rect must be [x_min,y_min,x_max,y_max]"))?;
    let mut c = [0i64; 4];
    for (slot, item) in c.iter_mut().zip(items) {
        *slot = item
            .as_int()
            .ok_or_else(|| ProtoError::new("rect coordinates must be integers"))?;
    }
    Ok(Rect::new(c[0], c[1], c[2], c[3]))
}

fn point_to_json(p: Point) -> Json {
    Json::Arr(vec![Json::Int(p.x), Json::Int(p.y)])
}

fn point_from_json(v: &Json) -> Result<Point, ProtoError> {
    let items = v
        .as_arr()
        .filter(|a| a.len() == 2)
        .ok_or_else(|| ProtoError::new("point must be [x,y]"))?;
    let x = items[0]
        .as_int()
        .ok_or_else(|| ProtoError::new("point coordinates must be integers"))?;
    let y = items[1]
        .as_int()
        .ok_or_else(|| ProtoError::new("point coordinates must be integers"))?;
    Ok(Point::new(x, y))
}

fn layer_to_json(layer: Layer) -> Json {
    Json::str(layer.cif_name())
}

fn layer_from_json(v: &Json) -> Result<Layer, ProtoError> {
    let name = v
        .as_str()
        .ok_or_else(|| ProtoError::new("layer must be a CIF layer name"))?;
    Layer::from_cif_name(name).ok_or_else(|| ProtoError::new(format!("unknown layer '{name}'")))
}

fn opt_layer_to_json(layer: Option<Layer>) -> Json {
    match layer {
        Some(l) => layer_to_json(l),
        None => Json::Null,
    }
}

fn boxes_to_json(boxes: &[ace_layout::LayerBox]) -> Json {
    Json::Arr(
        boxes
            .iter()
            .map(|b| {
                Json::obj([
                    ("layer", layer_to_json(b.layer)),
                    ("rect", rect_to_json(b.rect)),
                ])
            })
            .collect(),
    )
}

fn boxes_from_json(v: &Json) -> Result<Vec<(Layer, Rect)>, ProtoError> {
    v.as_arr()
        .ok_or_else(|| ProtoError::new("box list must be an array"))?
        .iter()
        .map(|b| {
            let layer = layer_from_json(
                b.get("layer")
                    .ok_or_else(|| ProtoError::new("box missing 'layer'"))?,
            )?;
            let rect = rect_from_json(
                b.get("rect")
                    .ok_or_else(|| ProtoError::new("box missing 'rect'"))?,
            )?;
            Ok((layer, rect))
        })
        .collect()
}

fn labels_to_json(labels: &[FlatLabel]) -> Json {
    Json::Arr(
        labels
            .iter()
            .map(|l| {
                Json::obj([
                    ("name", Json::str(&l.name)),
                    ("at", point_to_json(l.at)),
                    ("layer", opt_layer_to_json(l.layer)),
                ])
            })
            .collect(),
    )
}

fn labels_from_json(v: &Json) -> Result<Vec<(String, Point, Option<Layer>)>, ProtoError> {
    v.as_arr()
        .ok_or_else(|| ProtoError::new("label list must be an array"))?
        .iter()
        .map(|l| {
            let name = l
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| ProtoError::new("label missing 'name'"))?
                .to_string();
            let at = point_from_json(
                l.get("at")
                    .ok_or_else(|| ProtoError::new("label missing 'at'"))?,
            )?;
            let layer = match l.get("layer") {
                None | Some(Json::Null) => None,
                Some(v) => Some(layer_from_json(v)?),
            };
            Ok((name, at, layer))
        })
        .collect()
}

/// Serializes a [`LayoutDiff`] to its wire object.
pub fn diff_to_json(diff: &LayoutDiff) -> Json {
    Json::obj([
        ("boxes_added", boxes_to_json(&diff.boxes_added)),
        ("boxes_removed", boxes_to_json(&diff.boxes_removed)),
        ("labels_added", labels_to_json(&diff.labels_added)),
        ("labels_removed", labels_to_json(&diff.labels_removed)),
    ])
}

/// Parses a [`LayoutDiff`] from its wire object.
///
/// # Errors
///
/// [`ProtoError`] on missing fields or malformed geometry.
pub fn diff_from_json(v: &Json) -> Result<LayoutDiff, ProtoError> {
    let field = |key: &str| {
        v.get(key)
            .ok_or_else(|| ProtoError::new(format!("diff missing '{key}'")))
    };
    let mut diff = LayoutDiff::new();
    for (layer, rect) in boxes_from_json(field("boxes_added")?)? {
        diff.add_box(layer, rect);
    }
    for (layer, rect) in boxes_from_json(field("boxes_removed")?)? {
        diff.remove_box(layer, rect);
    }
    for (name, at, layer) in labels_from_json(field("labels_added")?)? {
        diff.add_label(name, at, layer);
    }
    for (name, at, layer) in labels_from_json(field("labels_removed")?)? {
        diff.remove_label(name, at, layer);
    }
    Ok(diff)
}

// ---------------------------------------------------------------------------
// Json conversions: options and lint config
// ---------------------------------------------------------------------------

fn opt_usize_to_json(v: Option<usize>) -> Json {
    match v {
        Some(n) => Json::Int(n as i64),
        None => Json::Null,
    }
}

fn opt_usize_from_json(v: Option<&Json>, what: &str) -> Result<Option<usize>, ProtoError> {
    match v {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Int(n)) if *n >= 0 => Ok(Some(*n as usize)),
        Some(_) => Err(ProtoError::new(format!(
            "'{what}' must be null or a non-negative integer"
        ))),
    }
}

/// Serializes [`ExtractOptions`] to its wire object.
pub fn options_to_json(options: &ExtractOptions) -> Json {
    Json::obj([
        ("geometry", Json::Bool(options.geometry_output)),
        (
            "sort",
            Json::str(match options.sort {
                SortStrategy::Insertion => "insertion",
                SortStrategy::Bin => "bin",
            }),
        ),
        (
            "window",
            match options.window {
                Some(r) => rect_to_json(r),
                None => Json::Null,
            },
        ),
        ("threads", opt_usize_to_json(options.threads)),
        ("bands", opt_usize_to_json(options.bands)),
        ("lints", Json::Bool(options.lints)),
    ])
}

/// Parses [`ExtractOptions`] from its wire object.
///
/// # Errors
///
/// [`ProtoError`] on unknown sort spellings or malformed fields.
pub fn options_from_json(v: &Json) -> Result<ExtractOptions, ProtoError> {
    let mut options = ExtractOptions::new();
    options.geometry_output = v
        .get("geometry")
        .and_then(Json::as_bool)
        .ok_or_else(|| ProtoError::new("options missing boolean 'geometry'"))?;
    options.sort = match v.get("sort").and_then(Json::as_str) {
        Some("insertion") => SortStrategy::Insertion,
        Some("bin") => SortStrategy::Bin,
        Some(other) => return Err(ProtoError::new(format!("unknown sort '{other}'"))),
        None => return Err(ProtoError::new("options missing 'sort'")),
    };
    options.window = match v.get("window") {
        None | Some(Json::Null) => None,
        Some(r) => Some(rect_from_json(r)?),
    };
    options.threads = opt_usize_from_json(v.get("threads"), "threads")?;
    options.bands = opt_usize_from_json(v.get("bands"), "bands")?;
    options.lints = v
        .get("lints")
        .and_then(Json::as_bool)
        .ok_or_else(|| ProtoError::new("options missing boolean 'lints'"))?;
    Ok(options)
}

/// Serializes a [`LintConfig`] to its wire object: one entry per rule
/// (enabled + severity, by stable kebab-case names) plus the supply
/// name sets and the minimum channel dimension.
pub fn lint_config_to_json(config: &LintConfig) -> Json {
    let rules = Json::Arr(
        RuleId::ALL
            .into_iter()
            .map(|rule| {
                Json::obj([
                    ("rule", Json::str(rule.name())),
                    ("enabled", Json::Bool(config.is_enabled(rule))),
                    ("severity", Json::str(config.severity_of(rule).name())),
                ])
            })
            .collect(),
    );
    Json::obj([
        ("rules", rules),
        (
            "vdd",
            Json::Arr(config.vdd_names.iter().map(Json::str).collect()),
        ),
        (
            "gnd",
            Json::Arr(config.gnd_names.iter().map(Json::str).collect()),
        ),
        ("min_channel_dim", Json::Int(config.min_channel_dim)),
        (
            "overload_cap_af_per_drive",
            Json::Int(config.overload_cap_af_per_drive),
        ),
    ])
}

/// Parses a [`LintConfig`] from its wire object.
///
/// [`Severity::Note`] is rejected: the config builder vocabulary
/// (allow/warn/deny, after clippy) cannot express it, so no conforming
/// client produces it.
///
/// # Errors
///
/// [`ProtoError`] on unknown rule/severity spellings or missing
/// fields.
pub fn lint_config_from_json(v: &Json) -> Result<LintConfig, ProtoError> {
    let mut config = LintConfig::new();
    let rules = v
        .get("rules")
        .and_then(Json::as_arr)
        .ok_or_else(|| ProtoError::new("lint config missing 'rules' array"))?;
    for entry in rules {
        let name = entry
            .get("rule")
            .and_then(Json::as_str)
            .ok_or_else(|| ProtoError::new("rule entry missing 'rule'"))?;
        let rule = RuleId::from_name(name)
            .ok_or_else(|| ProtoError::new(format!("unknown rule '{name}'")))?;
        let enabled = entry
            .get("enabled")
            .and_then(Json::as_bool)
            .ok_or_else(|| ProtoError::new("rule entry missing boolean 'enabled'"))?;
        let severity_name = entry
            .get("severity")
            .and_then(Json::as_str)
            .ok_or_else(|| ProtoError::new("rule entry missing 'severity'"))?;
        let severity = Severity::from_name(severity_name)
            .ok_or_else(|| ProtoError::new(format!("unknown severity '{severity_name}'")))?;
        config = match severity {
            Severity::Warning => config.warn(rule),
            Severity::Error => config.deny(rule),
            Severity::Note => {
                return Err(ProtoError::new(
                    "severity 'note' is not expressible in a lint config",
                ))
            }
        };
        if !enabled {
            config = config.allow(rule);
        }
    }
    let names = |key: &str| -> Result<Vec<String>, ProtoError> {
        v.get(key)
            .and_then(Json::as_arr)
            .ok_or_else(|| ProtoError::new(format!("lint config missing '{key}' array")))?
            .iter()
            .map(|n| {
                n.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| ProtoError::new(format!("'{key}' entries must be strings")))
            })
            .collect()
    };
    config = config.with_supply_names(names("vdd")?, names("gnd")?);
    let dim = v
        .get("min_channel_dim")
        .and_then(Json::as_int)
        .ok_or_else(|| ProtoError::new("lint config missing integer 'min_channel_dim'"))?;
    let overload = v
        .get("overload_cap_af_per_drive")
        .and_then(Json::as_int)
        .ok_or_else(|| {
            ProtoError::new("lint config missing integer 'overload_cap_af_per_drive'")
        })?;
    Ok(config
        .with_min_channel_dim(dim)
        .with_overload_threshold(overload))
}

// ---------------------------------------------------------------------------
// Json conversions: requests
// ---------------------------------------------------------------------------

fn envelope(id: i64, rest: Vec<(String, Json)>) -> Json {
    let mut pairs = vec![
        ("v".to_string(), Json::Int(PROTOCOL_VERSION)),
        ("id".to_string(), Json::Int(id)),
    ];
    pairs.extend(rest);
    Json::Obj(pairs)
}

fn check_envelope(v: &Json) -> Result<i64, ProtoError> {
    match v.get("v").and_then(Json::as_int) {
        Some(PROTOCOL_VERSION) => {}
        Some(other) => {
            return Err(ProtoError::new(format!(
                "protocol version {other} (this build speaks {PROTOCOL_VERSION})"
            )))
        }
        None => return Err(ProtoError::new("missing protocol version 'v'")),
    }
    v.get("id")
        .and_then(Json::as_int)
        .ok_or_else(|| ProtoError::new("missing integer 'id'"))
}

/// Converts a request to its wire JSON value (see [`encode_request`]
/// for the byte form).
pub fn request_to_json(id: i64, request: &Request) -> Json {
    let mut rest: Vec<(String, Json)> = vec![("op".into(), Json::str(request.op()))];
    match request {
        Request::Open {
            session,
            cif,
            bands,
            options,
        } => {
            rest.push(("session".into(), Json::str(session)));
            rest.push(("cif".into(), Json::str(cif)));
            rest.push(("bands".into(), Json::Int(*bands as i64)));
            rest.push(("options".into(), options_to_json(options)));
        }
        Request::Extract { session } | Request::Close { session } => {
            rest.push(("session".into(), Json::str(session)));
        }
        Request::EditDiff { session, diff } => {
            rest.push(("session".into(), Json::str(session)));
            rest.push(("diff".into(), diff_to_json(diff)));
        }
        Request::Lint { session, config } => {
            rest.push(("session".into(), Json::str(session)));
            rest.push(("config".into(), lint_config_to_json(config)));
        }
        Request::QueryNet { session, net } => {
            rest.push(("session".into(), Json::str(session)));
            rest.push(("net".into(), Json::str(net)));
        }
        Request::Status => {}
    }
    envelope(id, rest)
}

/// Parses a request from its wire JSON value.
///
/// # Errors
///
/// [`ProtoError`] on version mismatch, unknown op, or malformed
/// operands.
pub fn request_from_json(v: &Json) -> Result<(i64, Request), ProtoError> {
    let id = check_envelope(v)?;
    let op = v
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| ProtoError::new("missing request 'op'"))?;
    let session = || {
        v.get("session")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| ProtoError::new(format!("'{op}' requires a 'session'")))
    };
    let request = match op {
        "open" => Request::Open {
            session: session()?,
            cif: v
                .get("cif")
                .and_then(Json::as_str)
                .ok_or_else(|| ProtoError::new("'open' requires 'cif' text"))?
                .to_string(),
            bands: opt_usize_from_json(v.get("bands"), "bands")?
                .ok_or_else(|| ProtoError::new("'open' requires integer 'bands'"))?,
            options: options_from_json(
                v.get("options")
                    .ok_or_else(|| ProtoError::new("'open' requires 'options'"))?,
            )?,
        },
        "extract" => Request::Extract {
            session: session()?,
        },
        "edit-diff" => Request::EditDiff {
            session: session()?,
            diff: diff_from_json(
                v.get("diff")
                    .ok_or_else(|| ProtoError::new("'edit-diff' requires 'diff'"))?,
            )?,
        },
        "lint" => Request::Lint {
            session: session()?,
            config: lint_config_from_json(
                v.get("config")
                    .ok_or_else(|| ProtoError::new("'lint' requires 'config'"))?,
            )?,
        },
        "query-net" => Request::QueryNet {
            session: session()?,
            net: v
                .get("net")
                .and_then(Json::as_str)
                .ok_or_else(|| ProtoError::new("'query-net' requires 'net'"))?
                .to_string(),
        },
        "close" => Request::Close {
            session: session()?,
        },
        "status" => Request::Status,
        other => return Err(ProtoError::new(format!("unknown op '{other}'"))),
    };
    Ok((id, request))
}

/// Encodes a request to its canonical wire bytes (compact JSON; frame
/// it with [`crate::frame::write_frame`]).
pub fn encode_request(id: i64, request: &Request) -> Vec<u8> {
    request_to_json(id, request).to_text().into_bytes()
}

/// Decodes request bytes.
///
/// # Errors
///
/// [`ProtoError`] on invalid UTF-8/JSON or a malformed message.
pub fn decode_request(bytes: &[u8]) -> Result<(i64, Request), ProtoError> {
    let text =
        std::str::from_utf8(bytes).map_err(|_| ProtoError::new("request is not valid UTF-8"))?;
    let v = Json::parse(text).map_err(|e| ProtoError::new(e.to_string()))?;
    request_from_json(&v)
}

// ---------------------------------------------------------------------------
// Json conversions: responses
// ---------------------------------------------------------------------------

fn report_to_json(r: &WireReport) -> Json {
    Json::obj([
        ("boxes", Json::Int(r.boxes)),
        ("scanline_stops", Json::Int(r.scanline_stops)),
        ("net_unions", Json::Int(r.net_unions)),
        ("bands_reused", Json::Int(r.bands_reused)),
        ("bands_reswept", Json::Int(r.bands_reswept)),
        ("cache_bytes", Json::Int(r.cache_bytes)),
        ("lints_emitted", Json::Int(r.lints_emitted)),
        ("total_ns", Json::Int(r.total_ns)),
    ])
}

fn report_from_json(v: &Json) -> Result<WireReport, ProtoError> {
    let int = |key: &str| {
        v.get(key)
            .and_then(Json::as_int)
            .ok_or_else(|| ProtoError::new(format!("report missing integer '{key}'")))
    };
    Ok(WireReport {
        boxes: int("boxes")?,
        scanline_stops: int("scanline_stops")?,
        net_unions: int("net_unions")?,
        bands_reused: int("bands_reused")?,
        bands_reswept: int("bands_reswept")?,
        cache_bytes: int("cache_bytes")?,
        lints_emitted: int("lints_emitted")?,
        total_ns: int("total_ns")?,
    })
}

impl WireReport {
    /// Flattens the wire-relevant fields of an in-process report.
    pub fn from_report(r: &ace_core::ExtractionReport) -> WireReport {
        WireReport {
            boxes: r.boxes as i64,
            scanline_stops: r.scanline_stops as i64,
            net_unions: r.net_unions as i64,
            bands_reused: r.bands_reused as i64,
            bands_reswept: r.bands_reswept as i64,
            cache_bytes: r.cache_bytes as i64,
            lints_emitted: r.lints_emitted as i64,
            total_ns: r.total_time.as_nanos().min(i64::MAX as u128) as i64,
        }
    }
}

fn error_to_json(e: &ServiceError) -> Json {
    Json::obj([
        ("code", Json::str(e.code.name())),
        ("message", Json::str(&e.message)),
        (
            "retry_after_ms",
            match e.retry_after_ms {
                Some(ms) => Json::Int(ms),
                None => Json::Null,
            },
        ),
    ])
}

fn error_from_json(v: &Json) -> Result<ServiceError, ProtoError> {
    let code_name = v
        .get("code")
        .and_then(Json::as_str)
        .ok_or_else(|| ProtoError::new("error missing 'code'"))?;
    let code = ErrorCode::from_name(code_name)
        .ok_or_else(|| ProtoError::new(format!("unknown error code '{code_name}'")))?;
    let message = v
        .get("message")
        .and_then(Json::as_str)
        .ok_or_else(|| ProtoError::new("error missing 'message'"))?
        .to_string();
    let retry_after_ms = match v.get("retry_after_ms") {
        None | Some(Json::Null) => None,
        Some(Json::Int(ms)) => Some(*ms),
        Some(_) => return Err(ProtoError::new("'retry_after_ms' must be null or integer")),
    };
    Ok(ServiceError {
        code,
        message,
        retry_after_ms,
    })
}

/// Converts a response to its wire JSON value.
pub fn response_to_json(id: i64, response: &Response) -> Json {
    let ok = !matches!(response, Response::Error(_));
    let mut rest: Vec<(String, Json)> = vec![("ok".into(), Json::Bool(ok))];
    match response {
        Response::Opened { session, bands } => {
            rest.push(("result".into(), Json::str("opened")));
            rest.push(("session".into(), Json::str(session)));
            rest.push(("bands".into(), Json::Int(*bands as i64)));
        }
        Response::Extracted(result) => {
            rest.push(("result".into(), Json::str("extracted")));
            rest.push(("wirelist".into(), Json::str(&result.wirelist)));
            rest.push(("report".into(), report_to_json(&result.report)));
        }
        Response::Linted {
            diagnostics,
            report,
        } => {
            rest.push(("result".into(), Json::str("linted")));
            rest.push((
                "diagnostics".into(),
                Json::Arr(
                    diagnostics
                        .iter()
                        .map(|d| {
                            Json::obj([
                                ("rule", Json::str(d.rule.name())),
                                ("severity", Json::str(d.severity.name())),
                                ("message", Json::str(&d.message)),
                                ("rendered", Json::str(&d.rendered)),
                            ])
                        })
                        .collect(),
                ),
            ));
            rest.push(("report".into(), report_to_json(report)));
        }
        Response::Net(info) => {
            rest.push(("result".into(), Json::str("net")));
            rest.push(("net".into(), Json::str(&info.net)));
            rest.push(("found".into(), Json::Bool(info.found)));
            rest.push((
                "names".into(),
                Json::Arr(info.names.iter().map(Json::str).collect()),
            ));
            rest.push(("gates".into(), Json::Int(info.gates)));
            rest.push(("terminals".into(), Json::Int(info.terminals)));
            rest.push(("cap_af".into(), Json::Int(info.cap_af)));
            rest.push(("res_mohm".into(), Json::Int(info.res_mohm)));
        }
        Response::Closed { session, existed } => {
            rest.push(("result".into(), Json::str("closed")));
            rest.push(("session".into(), Json::str(session)));
            rest.push(("existed".into(), Json::Bool(*existed)));
        }
        Response::Status(s) => {
            rest.push(("result".into(), Json::str("status")));
            rest.push(("sessions".into(), Json::Int(s.sessions)));
            rest.push(("cache_bytes".into(), Json::Int(s.cache_bytes)));
            rest.push(("evictions".into(), Json::Int(s.evictions)));
            rest.push(("executed".into(), Json::Int(s.executed)));
            rest.push(("stolen".into(), Json::Int(s.stolen)));
            rest.push(("queued".into(), Json::Int(s.queued)));
            rest.push(("workers".into(), Json::Int(s.workers)));
        }
        Response::Error(e) => {
            rest.push(("error".into(), error_to_json(e)));
        }
    }
    envelope(id, rest)
}

/// Parses a response from its wire JSON value.
///
/// # Errors
///
/// [`ProtoError`] on version mismatch or malformed payloads.
pub fn response_from_json(v: &Json) -> Result<(i64, Response), ProtoError> {
    let id = check_envelope(v)?;
    let ok = v
        .get("ok")
        .and_then(Json::as_bool)
        .ok_or_else(|| ProtoError::new("missing boolean 'ok'"))?;
    if !ok {
        let e = error_from_json(
            v.get("error")
                .ok_or_else(|| ProtoError::new("failed response missing 'error'"))?,
        )?;
        return Ok((id, Response::Error(e)));
    }
    let result = v
        .get("result")
        .and_then(Json::as_str)
        .ok_or_else(|| ProtoError::new("ok response missing 'result'"))?;
    let session = || {
        v.get("session")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| ProtoError::new(format!("'{result}' missing 'session'")))
    };
    let response = match result {
        "opened" => Response::Opened {
            session: session()?,
            bands: opt_usize_from_json(v.get("bands"), "bands")?
                .ok_or_else(|| ProtoError::new("'opened' missing 'bands'"))?,
        },
        "extracted" => Response::Extracted(ExtractResult {
            wirelist: v
                .get("wirelist")
                .and_then(Json::as_str)
                .ok_or_else(|| ProtoError::new("'extracted' missing 'wirelist'"))?
                .to_string(),
            report: report_from_json(
                v.get("report")
                    .ok_or_else(|| ProtoError::new("'extracted' missing 'report'"))?,
            )?,
        }),
        "linted" => {
            let diagnostics = v
                .get("diagnostics")
                .and_then(Json::as_arr)
                .ok_or_else(|| ProtoError::new("'linted' missing 'diagnostics'"))?
                .iter()
                .map(|d| {
                    let rule_name = d
                        .get("rule")
                        .and_then(Json::as_str)
                        .ok_or_else(|| ProtoError::new("diagnostic missing 'rule'"))?;
                    let severity_name = d
                        .get("severity")
                        .and_then(Json::as_str)
                        .ok_or_else(|| ProtoError::new("diagnostic missing 'severity'"))?;
                    Ok(WireDiagnostic {
                        rule: RuleId::from_name(rule_name).ok_or_else(|| {
                            ProtoError::new(format!("unknown rule '{rule_name}'"))
                        })?,
                        severity: Severity::from_name(severity_name).ok_or_else(|| {
                            ProtoError::new(format!("unknown severity '{severity_name}'"))
                        })?,
                        message: d
                            .get("message")
                            .and_then(Json::as_str)
                            .ok_or_else(|| ProtoError::new("diagnostic missing 'message'"))?
                            .to_string(),
                        rendered: d
                            .get("rendered")
                            .and_then(Json::as_str)
                            .ok_or_else(|| ProtoError::new("diagnostic missing 'rendered'"))?
                            .to_string(),
                    })
                })
                .collect::<Result<Vec<_>, ProtoError>>()?;
            Response::Linted {
                diagnostics,
                report: report_from_json(
                    v.get("report")
                        .ok_or_else(|| ProtoError::new("'linted' missing 'report'"))?,
                )?,
            }
        }
        "net" => Response::Net(NetInfo {
            net: v
                .get("net")
                .and_then(Json::as_str)
                .ok_or_else(|| ProtoError::new("'net' missing 'net'"))?
                .to_string(),
            found: v
                .get("found")
                .and_then(Json::as_bool)
                .ok_or_else(|| ProtoError::new("'net' missing 'found'"))?,
            names: v
                .get("names")
                .and_then(Json::as_arr)
                .ok_or_else(|| ProtoError::new("'net' missing 'names'"))?
                .iter()
                .map(|n| {
                    n.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| ProtoError::new("'names' entries must be strings"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            gates: v
                .get("gates")
                .and_then(Json::as_int)
                .ok_or_else(|| ProtoError::new("'net' missing 'gates'"))?,
            terminals: v
                .get("terminals")
                .and_then(Json::as_int)
                .ok_or_else(|| ProtoError::new("'net' missing 'terminals'"))?,
            cap_af: v
                .get("cap_af")
                .and_then(Json::as_int)
                .ok_or_else(|| ProtoError::new("'net' missing 'cap_af'"))?,
            res_mohm: v
                .get("res_mohm")
                .and_then(Json::as_int)
                .ok_or_else(|| ProtoError::new("'net' missing 'res_mohm'"))?,
        }),
        "closed" => Response::Closed {
            session: session()?,
            existed: v
                .get("existed")
                .and_then(Json::as_bool)
                .ok_or_else(|| ProtoError::new("'closed' missing 'existed'"))?,
        },
        "status" => {
            let int = |key: &str| {
                v.get(key)
                    .and_then(Json::as_int)
                    .ok_or_else(|| ProtoError::new(format!("'status' missing '{key}'")))
            };
            Response::Status(ServiceStatus {
                sessions: int("sessions")?,
                cache_bytes: int("cache_bytes")?,
                evictions: int("evictions")?,
                executed: int("executed")?,
                stolen: int("stolen")?,
                queued: int("queued")?,
                workers: int("workers")?,
            })
        }
        other => return Err(ProtoError::new(format!("unknown result '{other}'"))),
    };
    Ok((id, response))
}

/// Encodes a response to its canonical wire bytes.
pub fn encode_response(id: i64, response: &Response) -> Vec<u8> {
    response_to_json(id, response).to_text().into_bytes()
}

/// Decodes response bytes.
///
/// # Errors
///
/// [`ProtoError`] on invalid UTF-8/JSON or a malformed message.
pub fn decode_response(bytes: &[u8]) -> Result<(i64, Response), ProtoError> {
    let text =
        std::str::from_utf8(bytes).map_err(|_| ProtoError::new("response is not valid UTF-8"))?;
    let v = Json::parse(text).map_err(|e| ProtoError::new(e.to_string()))?;
    response_from_json(&v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_codes_round_trip_and_stay_kebab() {
        for code in ErrorCode::ALL {
            assert_eq!(ErrorCode::from_name(code.name()), Some(code));
            assert!(
                code.name()
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c == '-'),
                "{code}"
            );
        }
        assert_eq!(ErrorCode::from_name("no-such-code"), None);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut v = request_to_json(1, &Request::Status);
        if let Json::Obj(pairs) = &mut v {
            pairs[0].1 = Json::Int(99);
        }
        let err = request_from_json(&v).unwrap_err();
        assert!(err.message.contains("version 99"));
    }

    #[test]
    fn unknown_op_and_missing_fields_are_protocol_errors() {
        let v = Json::obj([
            ("v", Json::Int(PROTOCOL_VERSION)),
            ("id", Json::Int(1)),
            ("op", Json::str("frobnicate")),
        ]);
        assert!(request_from_json(&v)
            .unwrap_err()
            .message
            .contains("frobnicate"));

        let v = Json::obj([
            ("v", Json::Int(PROTOCOL_VERSION)),
            ("id", Json::Int(1)),
            ("op", Json::str("extract")),
        ]);
        assert!(request_from_json(&v)
            .unwrap_err()
            .message
            .contains("session"));
    }

    #[test]
    fn lint_config_severity_note_is_rejected() {
        let mut v = lint_config_to_json(&LintConfig::new());
        // Corrupt the first rule's severity.
        if let Some(Json::Arr(rules)) = v.get("rules").cloned() {
            let mut rules = rules;
            if let Json::Obj(pairs) = &mut rules[0] {
                for (k, val) in pairs.iter_mut() {
                    if k == "severity" {
                        *val = Json::str("note");
                    }
                }
            }
            if let Json::Obj(pairs) = &mut v {
                for (k, val) in pairs.iter_mut() {
                    if k == "rules" {
                        *val = Json::Arr(rules.clone());
                    }
                }
            }
        }
        assert!(lint_config_from_json(&v)
            .unwrap_err()
            .message
            .contains("note"));
    }

    #[test]
    fn wire_report_flattens_in_process_report() {
        let mut r = ace_core::ExtractionReport::default();
        r.boxes = 12;
        r.bands_reused = 3;
        r.cache_bytes = 4096;
        r.total_time = std::time::Duration::from_micros(7);
        let w = WireReport::from_report(&r);
        assert_eq!(w.boxes, 12);
        assert_eq!(w.bands_reused, 3);
        assert_eq!(w.cache_bytes, 4096);
        assert_eq!(w.total_ns, 7_000);
    }
}
