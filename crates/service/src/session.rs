//! Resident extraction sessions and the memory-budget evictor.
//!
//! A session is a parsed, flattened layout plus the incremental
//! extractor's warm band cache, kept alive between requests so an
//! editor's second `extract` costs only the bands its edits dirtied.
//! The store maps client-chosen names to sessions, stamps every
//! checkout with a monotonic touch counter (LRU order without wall
//! clocks), and records each session's CacheBytes gauge after every
//! request.
//!
//! The evictor runs inline after each request (deterministic, no
//! background thread): while the summed gauges exceed the configured
//! budget, it walks sessions coldest-first and drops their band
//! caches ([`ace_core::IncrementalExtractor::evict_cache`]). An
//! evicted session stays open — its layout is small compared to the
//! cache — and the next request on it simply pays a cold re-sweep.
//! Sessions currently locked by an in-flight request are skipped
//! (`try_lock`): a busy session is not cold, and skipping it keeps
//! the evictor free of lock-ordering deadlocks.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use ace_core::IncrementalExtractor;

use crate::protocol::{ErrorCode, ServiceError};

/// One resident session: the extractor owns the layout and the cache.
type SharedExtractor = Arc<Mutex<IncrementalExtractor>>;

struct Slot {
    extractor: SharedExtractor,
    /// Monotonic LRU stamp: higher = hotter.
    last_touch: u64,
    /// The CacheBytes gauge as of the session's last request.
    cache_bytes: u64,
}

struct Inner {
    slots: HashMap<String, Slot>,
    touch_counter: u64,
    evictions: u64,
}

/// Aggregate store gauges, for `status` responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Resident sessions.
    pub sessions: usize,
    /// Summed CacheBytes gauges across sessions.
    pub cache_bytes: u64,
    /// Caches reclaimed by the evictor since startup.
    pub evictions: u64,
}

/// Named resident sessions with LRU cache eviction against a byte
/// budget.
pub struct SessionStore {
    inner: Mutex<Inner>,
    budget_bytes: u64,
}

impl SessionStore {
    /// An empty store that evicts cold caches once the summed
    /// CacheBytes gauges exceed `budget_bytes`.
    pub fn new(budget_bytes: u64) -> SessionStore {
        SessionStore {
            inner: Mutex::new(Inner {
                slots: HashMap::new(),
                touch_counter: 0,
                evictions: 0,
            }),
            budget_bytes,
        }
    }

    /// Registers a new session.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::SessionExists`] when the name is taken.
    pub fn open(&self, name: &str, extractor: IncrementalExtractor) -> Result<(), ServiceError> {
        let mut inner = self.inner.lock().unwrap();
        if inner.slots.contains_key(name) {
            return Err(ServiceError::new(
                ErrorCode::SessionExists,
                format!("session '{name}' already exists"),
            ));
        }
        inner.touch_counter += 1;
        let stamp = inner.touch_counter;
        let cache_bytes = extractor.cache_bytes();
        inner.slots.insert(
            name.to_string(),
            Slot {
                extractor: Arc::new(Mutex::new(extractor)),
                last_touch: stamp,
                cache_bytes,
            },
        );
        Ok(())
    }

    /// Checks a session out for a request, bumping its LRU stamp. The
    /// returned handle serializes concurrent requests on the same
    /// session through its mutex.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::UnknownSession`] when no such session exists.
    pub fn checkout(&self, name: &str) -> Result<SharedExtractor, ServiceError> {
        let mut inner = self.inner.lock().unwrap();
        inner.touch_counter += 1;
        let stamp = inner.touch_counter;
        let slot = inner.slots.get_mut(name).ok_or_else(|| {
            ServiceError::new(
                ErrorCode::UnknownSession,
                format!("no session named '{name}'"),
            )
        })?;
        slot.last_touch = stamp;
        Ok(Arc::clone(&slot.extractor))
    }

    /// Drops a session entirely. Returns whether it existed.
    pub fn close(&self, name: &str) -> bool {
        self.inner.lock().unwrap().slots.remove(name).is_some()
    }

    /// Records a session's CacheBytes gauge after a request, then
    /// runs the evictor. Call this at the end of every session
    /// request; `name` is exempt from this eviction round (it is by
    /// definition the hottest session).
    pub fn note_cache_bytes(&self, name: &str, cache_bytes: u64) {
        let mut inner = self.inner.lock().unwrap();
        if let Some(slot) = inner.slots.get_mut(name) {
            slot.cache_bytes = cache_bytes;
        }
        self.enforce_budget(&mut inner, Some(name));
    }

    /// Current aggregate gauges.
    pub fn stats(&self) -> StoreStats {
        let inner = self.inner.lock().unwrap();
        StoreStats {
            sessions: inner.slots.len(),
            cache_bytes: inner.slots.values().map(|s| s.cache_bytes).sum(),
            evictions: inner.evictions,
        }
    }

    /// Evicts coldest-first until the summed gauges fit the budget,
    /// the candidates run out, or every remaining candidate is busy.
    fn enforce_budget(&self, inner: &mut Inner, exempt: Option<&str>) {
        let mut skipped: Vec<String> = Vec::new();
        loop {
            let total: u64 = inner.slots.values().map(|s| s.cache_bytes).sum();
            if total <= self.budget_bytes {
                return;
            }
            // Coldest session still holding cache, excluding the one
            // that just ran and any we already failed to lock.
            let victim = inner
                .slots
                .iter()
                .filter(|(name, slot)| {
                    slot.cache_bytes > 0
                        && Some(name.as_str()) != exempt
                        && !skipped.iter().any(|s| s == *name)
                })
                .min_by_key(|(_, slot)| slot.last_touch)
                .map(|(name, _)| name.clone());
            let Some(victim) = victim else { return };
            let slot = inner.slots.get_mut(&victim).expect("victim exists");
            // A busy session is being used right now — not cold.
            match Arc::clone(&slot.extractor).try_lock() {
                Ok(mut extractor) => {
                    extractor.evict_cache();
                    slot.cache_bytes = 0;
                    inner.evictions += 1;
                }
                Err(_) => skipped.push(victim),
            }
        }
    }
}

/// Stable shard assignment for a session name (FNV-1a). Requests for
/// one session always land on one shard's queue, so per-session work
/// stays ordered unless a stealing worker picks it up — and then the
/// session mutex still serializes it.
pub fn shard_of(name: &str, shards: usize) -> usize {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    (hash % shards.max(1) as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_layout::FlatLayout;

    fn small_extractor() -> IncrementalExtractor {
        let mut flat = FlatLayout::new();
        flat.push_box(ace_geom::Layer::Metal, ace_geom::Rect::new(0, 0, 400, 400));
        IncrementalExtractor::new(flat, 2)
    }

    fn warmed_extractor() -> IncrementalExtractor {
        use ace_core::CircuitExtractor;
        let mut ex = small_extractor();
        ex.extract("warm").expect("extracts");
        assert!(ex.cache_bytes() > 0, "warm cache expected");
        ex
    }

    #[test]
    fn open_checkout_close_lifecycle() {
        let store = SessionStore::new(u64::MAX);
        store.open("a", small_extractor()).unwrap();
        let err = store.open("a", small_extractor()).unwrap_err();
        assert_eq!(err.code, ErrorCode::SessionExists);
        assert!(store.checkout("a").is_ok());
        let err = store.checkout("ghost").err().expect("unknown session");
        assert_eq!(err.code, ErrorCode::UnknownSession);
        assert!(store.close("a"));
        assert!(!store.close("a"));
        assert_eq!(store.stats().sessions, 0);
    }

    #[test]
    fn evictor_reclaims_coldest_first_and_spares_the_hot_session() {
        // Budget 0: any recorded cache must be evicted, except the
        // session that just ran.
        let store = SessionStore::new(0);
        let cold = warmed_extractor();
        let cold_bytes = cold.cache_bytes();
        store.open("cold", cold).unwrap();
        store.open("hot", warmed_extractor()).unwrap();

        // "cold" reports first, then "hot" reports: enforcing after
        // hot's request must evict cold (older touch) but leave hot's
        // gauge alone for this round.
        store.note_cache_bytes("cold", cold_bytes);
        let _ = store.checkout("hot").unwrap();
        store.note_cache_bytes("hot", cold_bytes);
        let stats = store.stats();
        assert!(stats.evictions >= 1, "cold session should be evicted");
        // The cold session's extractor really lost its cache.
        let cold = store.checkout("cold").unwrap();
        assert_eq!(cold.lock().unwrap().cache_bytes(), 0);
    }

    #[test]
    fn busy_sessions_are_skipped_not_deadlocked() {
        let store = SessionStore::new(0);
        store.open("busy", warmed_extractor()).unwrap();
        store.open("idle", warmed_extractor()).unwrap();
        let busy = store.checkout("busy").unwrap();
        let guard = busy.lock().unwrap();
        // Evicting while "busy" is locked must terminate and reclaim
        // only the idle session.
        store.note_cache_bytes("fresh-name-not-present", 0);
        drop(guard);
        let idle = store.checkout("idle").unwrap();
        assert_eq!(idle.lock().unwrap().cache_bytes(), 0);
    }

    #[test]
    fn shard_assignment_is_stable_and_in_range() {
        for shards in [1, 2, 3, 8] {
            for name in ["a", "session-7", "", "λ"] {
                let s = shard_of(name, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(name, shards), "stable");
            }
        }
        assert_eq!(shard_of("anything", 0), 0);
    }
}
