//! SIGTERM/SIGINT handling without a libc crate dependency.
//!
//! The daemon must exit cleanly on SIGTERM (the supervisor's stop
//! signal) and SIGINT (a human's Ctrl-C). The container has no `libc`
//! crate, so this module carries the one `extern "C"` binding the
//! crate needs — `signal(2)`, which every Rust binary already links
//! through the platform C runtime. The handler does the only thing an
//! async-signal-safe handler may: store to an atomic. Everything else
//! (draining queues, joining threads, unlinking sockets) happens on
//! normal threads that poll the flag.

use std::sync::atomic::{AtomicBool, Ordering};

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

mod sys {
    //! The lone FFI binding, quarantined: `signal(2)` from the C
    //! runtime the binary links anyway.

    pub type Handler = extern "C" fn(i32);

    extern "C" {
        pub fn signal(signum: i32, handler: Handler) -> usize;
    }
}

extern "C" fn on_signal(_signum: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Installs SIGTERM/SIGINT handlers that flip a process-wide flag,
/// and returns that flag. Idempotent; safe to call from any thread
/// before the daemon starts serving.
pub fn install_shutdown_handler() -> &'static AtomicBool {
    unsafe {
        sys::signal(SIGTERM, on_signal);
        sys::signal(SIGINT, on_signal);
    }
    &SHUTDOWN
}

/// The shutdown flag without installing handlers (tests flip it
/// directly).
pub fn shutdown_flag() -> &'static AtomicBool {
    &SHUTDOWN
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_starts_clear_and_handler_sets_it() {
        let flag = install_shutdown_handler();
        // Invoke the handler directly rather than raising a real
        // signal (a signal would tear down the whole test harness if
        // delivery raced another test's expectations).
        on_signal(SIGTERM);
        assert!(flag.load(Ordering::SeqCst));
        flag.store(false, Ordering::SeqCst);
        assert!(!shutdown_flag().load(Ordering::SeqCst));
    }
}
