//! Protocol stability: every request/response/error round-trips
//! through the wire encoding unchanged, and the byte-level encoding
//! itself is pinned by golden frames so an accidental field rename or
//! reordering fails loudly instead of silently breaking deployed
//! clients.

use ace_core::{ExtractOptions, SortStrategy};
use ace_geom::{Layer, Point, Rect};
use ace_layout::LayoutDiff;
use ace_lint::{LintConfig, RuleId, Severity};
use ace_service::protocol::{
    decode_request, decode_response, diff_from_json, diff_to_json, encode_request, encode_response,
    lint_config_from_json, lint_config_to_json, options_from_json, options_to_json, ErrorCode,
    ExtractResult, NetInfo, Request, Response, ServiceError, ServiceStatus, WireDiagnostic,
    WireReport,
};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

fn name() -> impl Strategy<Value = String> {
    prop::sample::select(vec![
        "s".to_string(),
        "session-7".to_string(),
        "editor/αβ".to_string(),
        "with \"quotes\" and \\slashes\\".to_string(),
        "line\nbreak\ttab".to_string(),
        String::new(),
    ])
}

fn layer() -> impl Strategy<Value = Layer> {
    prop::sample::select(Layer::ALL.to_vec())
}

fn rect() -> impl Strategy<Value = Rect> {
    (-2000i64..2000, -2000i64..2000, 1i64..500, 1i64..500)
        .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h))
}

fn point() -> impl Strategy<Value = Point> {
    (-2000i64..2000, -2000i64..2000).prop_map(|(x, y)| Point::new(x, y))
}

fn opt_layer() -> impl Strategy<Value = Option<Layer>> {
    prop_oneof![Just(None), layer().prop_map(Some)]
}

fn diff() -> impl Strategy<Value = LayoutDiff> {
    (
        prop::collection::vec((layer(), rect()), 0..4),
        prop::collection::vec((layer(), rect()), 0..4),
        prop::collection::vec((name(), point(), opt_layer()), 0..3),
        prop::collection::vec((name(), point(), opt_layer()), 0..3),
    )
        .prop_map(|(added, removed, ladd, lrem)| {
            let mut d = LayoutDiff::new();
            for (l, r) in added {
                d.add_box(l, r);
            }
            for (l, r) in removed {
                d.remove_box(l, r);
            }
            for (n, p, l) in ladd {
                d.add_label(n, p, l);
            }
            for (n, p, l) in lrem {
                d.remove_label(n, p, l);
            }
            d
        })
}

fn options() -> impl Strategy<Value = ExtractOptions> {
    (
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        prop_oneof![Just(None), (0usize..8).prop_map(Some)],
        prop_oneof![Just(None), (0usize..8).prop_map(Some)],
        prop_oneof![Just(None), rect().prop_map(Some)],
    )
        .prop_map(|(geometry, bin_sort, lints, threads, bands, window)| {
            let mut o = ExtractOptions::new();
            o.geometry_output = geometry;
            o.sort = if bin_sort {
                SortStrategy::Bin
            } else {
                SortStrategy::Insertion
            };
            o.lints = lints;
            o.threads = threads;
            o.bands = bands;
            o.window = window;
            o
        })
}

fn rule() -> impl Strategy<Value = RuleId> {
    prop::sample::select(RuleId::ALL.to_vec())
}

fn lint_config() -> impl Strategy<Value = LintConfig> {
    (
        prop::collection::vec((rule(), 0u8..3), 0..6),
        prop::collection::vec(name(), 1..3),
        prop::collection::vec(name(), 1..3),
        0i64..5000,
        1i64..1_000_000,
    )
        .prop_map(|(tweaks, vdd, gnd, dim, overload)| {
            let mut config = LintConfig::new();
            for (rule, action) in tweaks {
                config = match action {
                    0 => config.allow(rule),
                    1 => config.warn(rule),
                    _ => config.deny(rule),
                };
            }
            config
                .with_supply_names(vdd, gnd)
                .with_min_channel_dim(dim)
                .with_overload_threshold(overload)
        })
}

fn request() -> impl Strategy<Value = Request> {
    prop_oneof![
        (name(), name(), 0usize..8, options()).prop_map(|(session, cif, bands, options)| {
            Request::Open {
                session,
                cif,
                bands,
                options,
            }
        }),
        name().prop_map(|session| Request::Extract { session }),
        (name(), diff()).prop_map(|(session, diff)| Request::EditDiff { session, diff }),
        (name(), lint_config()).prop_map(|(session, config)| Request::Lint { session, config }),
        (name(), name()).prop_map(|(session, net)| Request::QueryNet { session, net }),
        name().prop_map(|session| Request::Close { session }),
        Just(Request::Status),
    ]
}

fn report() -> impl Strategy<Value = WireReport> {
    (0i64..1_000_000, 0i64..100, 0i64..100, 0i64..1_000_000_000).prop_map(
        |(boxes, reused, reswept, total_ns)| WireReport {
            boxes,
            scanline_stops: boxes / 2,
            net_unions: boxes / 3,
            bands_reused: reused,
            bands_reswept: reswept,
            cache_bytes: boxes * 7,
            lints_emitted: reused % 5,
            total_ns,
        },
    )
}

fn service_error() -> impl Strategy<Value = ServiceError> {
    (
        prop::sample::select(ErrorCode::ALL.to_vec()),
        name(),
        prop_oneof![Just(None), (0i64..10_000).prop_map(Some)],
    )
        .prop_map(|(code, message, retry_after_ms)| ServiceError {
            code,
            message,
            retry_after_ms,
        })
}

fn diagnostic() -> impl Strategy<Value = WireDiagnostic> {
    (
        rule(),
        prop::sample::select(vec![Severity::Warning, Severity::Error, Severity::Note]),
        name(),
        name(),
    )
        .prop_map(|(rule, severity, message, rendered)| WireDiagnostic {
            rule,
            severity,
            message,
            rendered,
        })
}

fn response() -> impl Strategy<Value = Response> {
    prop_oneof![
        (name(), 1usize..8).prop_map(|(session, bands)| Response::Opened { session, bands }),
        (name(), report()).prop_map(|(wirelist, report)| {
            Response::Extracted(ExtractResult { wirelist, report })
        }),
        (prop::collection::vec(diagnostic(), 0..4), report()).prop_map(|(diagnostics, report)| {
            Response::Linted {
                diagnostics,
                report,
            }
        }),
        (
            name(),
            any::<bool>(),
            prop::collection::vec(name(), 0..3),
            (0i64..9, 0i64..9),
            (0i64..1_000_000, 0i64..1_000_000_000)
        )
            .prop_map(
                |(net, found, names, (gates, terminals), (cap_af, res_mohm))| {
                    Response::Net(NetInfo {
                        net,
                        found,
                        names,
                        gates,
                        terminals,
                        cap_af,
                        res_mohm,
                    })
                }
            ),
        (name(), any::<bool>())
            .prop_map(|(session, existed)| Response::Closed { session, existed }),
        (
            (0i64..9, 0i64..1_000_000, 0i64..9),
            (0i64..999, 0i64..99, 0i64..9, 1i64..9)
        )
            .prop_map(
                |((sessions, cache_bytes, evictions), (executed, stolen, queued, workers))| {
                    Response::Status(ServiceStatus {
                        sessions,
                        cache_bytes,
                        evictions,
                        executed,
                        stolen,
                        queued,
                        workers,
                    })
                }
            ),
        service_error().prop_map(Response::Error),
    ]
}

// ---------------------------------------------------------------------------
// Round-trip properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn every_request_round_trips(id in -1000i64..1_000_000, request in request()) {
        let bytes = encode_request(id, &request);
        let (back_id, back) = decode_request(&bytes).expect("decodes");
        prop_assert_eq!(back_id, id);
        prop_assert_eq!(back, request);
    }

    #[test]
    fn every_response_round_trips(id in -1000i64..1_000_000, response in response()) {
        let bytes = encode_response(id, &response);
        let (back_id, back) = decode_response(&bytes).expect("decodes");
        prop_assert_eq!(back_id, id);
        prop_assert_eq!(back, response);
    }

    #[test]
    fn diffs_and_options_round_trip_standalone(d in diff(), o in options()) {
        prop_assert_eq!(diff_from_json(&diff_to_json(&d)).expect("diff"), d);
        prop_assert_eq!(options_from_json(&options_to_json(&o)).expect("options"), o);
    }

    #[test]
    fn lint_configs_round_trip(config in lint_config()) {
        let back = lint_config_from_json(&lint_config_to_json(&config)).expect("config");
        prop_assert_eq!(back, config);
    }
}

// ---------------------------------------------------------------------------
// Golden bytes: the exact wire encoding is a compatibility contract
// ---------------------------------------------------------------------------

#[test]
fn golden_request_bytes_are_pinned() {
    let mut diff = LayoutDiff::new();
    diff.move_box(
        Layer::Metal,
        Rect::new(0, 0, 100, 100),
        Rect::new(0, 200, 100, 300),
    );
    diff.add_label("OUT", Point::new(50, 250), Some(Layer::Metal));

    let cases: Vec<(Request, &str)> = vec![
        (
            Request::Open {
                session: "edit".into(),
                cif: "L NM; B 4 4 2 2; E".into(),
                bands: 4,
                options: ExtractOptions::new(),
            },
            r#"{"v":1,"id":1,"op":"open","session":"edit","cif":"L NM; B 4 4 2 2; E","bands":4,"options":{"geometry":false,"sort":"insertion","window":null,"threads":null,"bands":null,"lints":false}}"#,
        ),
        (
            Request::Extract {
                session: "edit".into(),
            },
            r#"{"v":1,"id":1,"op":"extract","session":"edit"}"#,
        ),
        (
            Request::EditDiff {
                session: "edit".into(),
                diff,
            },
            r#"{"v":1,"id":1,"op":"edit-diff","session":"edit","diff":{"boxes_added":[{"layer":"NM","rect":[0,200,100,300]}],"boxes_removed":[{"layer":"NM","rect":[0,0,100,100]}],"labels_added":[{"name":"OUT","at":[50,250],"layer":"NM"}],"labels_removed":[]}}"#,
        ),
        (
            Request::QueryNet {
                session: "edit".into(),
                net: "VDD".into(),
            },
            r#"{"v":1,"id":1,"op":"query-net","session":"edit","net":"VDD"}"#,
        ),
        (
            Request::Close {
                session: "edit".into(),
            },
            r#"{"v":1,"id":1,"op":"close","session":"edit"}"#,
        ),
        (Request::Status, r#"{"v":1,"id":1,"op":"status"}"#),
    ];
    for (request, golden) in cases {
        let bytes = encode_request(1, &request);
        assert_eq!(
            std::str::from_utf8(&bytes).unwrap(),
            golden,
            "wire format drifted for op '{}'",
            request.op()
        );
    }
}

#[test]
fn golden_lint_request_bytes_are_pinned() {
    let config = LintConfig::new()
        .allow(RuleId::DanglingCut)
        .deny(RuleId::UndrivenNet)
        .with_supply_names(vec!["VDD!".into()], vec!["GND!".into()])
        .with_min_channel_dim(500);
    let bytes = encode_request(
        2,
        &Request::Lint {
            session: "edit".into(),
            config,
        },
    );
    let golden = concat!(
        r#"{"v":1,"id":2,"op":"lint","session":"edit","config":{"rules":["#,
        r#"{"rule":"floating-gate","enabled":true,"severity":"error"},"#,
        r#"{"rule":"supply-short","enabled":true,"severity":"error"},"#,
        r#"{"rule":"undriven-net","enabled":true,"severity":"error"},"#,
        r#"{"rule":"zero-wl-device","enabled":true,"severity":"error"},"#,
        r#"{"rule":"dangling-cut","enabled":false,"severity":"warning"},"#,
        r#"{"rule":"depletion-pullup","enabled":true,"severity":"warning"},"#,
        r#"{"rule":"conflicting-labels","enabled":true,"severity":"warning"},"#,
        r#"{"rule":"overloaded-net","enabled":true,"severity":"warning"}],"#,
        r#""vdd":["VDD!"],"gnd":["GND!"],"min_channel_dim":500,"#,
        r#""overload_cap_af_per_drive":50000}}"#,
    );
    assert_eq!(std::str::from_utf8(&bytes).unwrap(), golden);
}

#[test]
fn golden_response_bytes_are_pinned() {
    let cases: Vec<(Response, &str)> = vec![
        (
            Response::Opened {
                session: "edit".into(),
                bands: 4,
            },
            r#"{"v":1,"id":9,"ok":true,"result":"opened","session":"edit","bands":4}"#,
        ),
        (
            Response::Extracted(ExtractResult {
                wirelist: "(wirelist \"t\")\n".into(),
                report: WireReport {
                    boxes: 10,
                    scanline_stops: 6,
                    net_unions: 2,
                    bands_reused: 3,
                    bands_reswept: 1,
                    cache_bytes: 2048,
                    lints_emitted: 0,
                    total_ns: 12345,
                },
            }),
            r#"{"v":1,"id":9,"ok":true,"result":"extracted","wirelist":"(wirelist \"t\")\n","report":{"boxes":10,"scanline_stops":6,"net_unions":2,"bands_reused":3,"bands_reswept":1,"cache_bytes":2048,"lints_emitted":0,"total_ns":12345}}"#,
        ),
        (
            Response::Net(NetInfo {
                net: "OUT".into(),
                found: true,
                names: vec!["OUT".into()],
                gates: 1,
                terminals: 2,
                cap_af: 3600,
                res_mohm: 125000,
            }),
            r#"{"v":1,"id":9,"ok":true,"result":"net","net":"OUT","found":true,"names":["OUT"],"gates":1,"terminals":2,"cap_af":3600,"res_mohm":125000}"#,
        ),
        (
            Response::Error(
                ServiceError::new(ErrorCode::QueueFull, "shard 1 queue is full")
                    .with_retry_after_ms(50),
            ),
            r#"{"v":1,"id":9,"ok":false,"error":{"code":"queue-full","message":"shard 1 queue is full","retry_after_ms":50}}"#,
        ),
        (
            Response::Status(ServiceStatus {
                sessions: 2,
                cache_bytes: 4096,
                evictions: 1,
                executed: 17,
                stolen: 3,
                queued: 0,
                workers: 2,
            }),
            r#"{"v":1,"id":9,"ok":true,"result":"status","sessions":2,"cache_bytes":4096,"evictions":1,"executed":17,"stolen":3,"queued":0,"workers":2}"#,
        ),
    ];
    for (response, golden) in cases {
        let bytes = encode_response(9, &response);
        assert_eq!(std::str::from_utf8(&bytes).unwrap(), golden);
    }
}
