//! End-to-end daemon tests: a real `Daemon` with real sockets, and a
//! [`Client`] on the other end. The oracle is always the in-process
//! extraction path: whatever the service answers over the wire must
//! equal what the same `IncrementalExtractor` computes directly.

use ace_core::{CircuitExtractor, ExtractOptions, IncrementalExtractor, NullProbe};
use ace_layout::{FlatLayout, Library};
use ace_lint::{lint_extraction, LintConfig};
use ace_service::{Client, ClientError, Daemon, ErrorCode, ServiceConfig};
use ace_wirelist::compare::same_circuit;
use ace_wirelist::parasitics::{net_capacitance_af, net_resistance_mohm, ParasiticParams};
use ace_wirelist::{parse_wirelist, write_wirelist, WirelistOptions};
use ace_workloads::cells::chained_inverters_cif;
use ace_workloads::mesh::{mesh_cif, MESH_LINE, MESH_PITCH};

const BANDS: usize = 4;

/// The daemon end of every test: serve TCP on an ephemeral port.
fn daemon_and_client(config: ServiceConfig) -> (Daemon, Client) {
    let daemon = Daemon::new(config);
    let addr = daemon.serve_tcp("127.0.0.1:0").expect("bind tcp");
    let client = Client::connect_tcp(&addr.to_string()).expect("connect");
    (daemon, client)
}

fn in_process(cif: &str) -> IncrementalExtractor {
    let lib = Library::from_cif_text(cif).expect("oracle parses");
    IncrementalExtractor::new(FlatLayout::from_library(&lib), BANDS)
}

fn service_error(err: ClientError) -> ace_service::ServiceError {
    match err {
        ClientError::Service(e) => e,
        other => panic!("expected a service error, got: {other}"),
    }
}

#[test]
fn daemon_extract_lint_and_query_match_in_process_results() {
    let cif = chained_inverters_cif(6);
    let (daemon, mut client) = daemon_and_client(ServiceConfig::default());
    client
        .open("chain", &cif, BANDS, ExtractOptions::new())
        .expect("open");

    // Extract over the wire vs the oracle.
    let wire = client.extract("chain").expect("extract");
    let mut oracle = in_process(&cif);
    let extraction = oracle.extract("aced").expect("oracle extracts");
    let oracle_text = write_wirelist(&extraction.netlist, WirelistOptions::new());
    assert_eq!(
        wire.wirelist, oracle_text,
        "wire and oracle wirelists differ"
    );
    let wire_netlist = parse_wirelist(&wire.wirelist).expect("wire wirelist parses");
    same_circuit(&wire_netlist, &extraction.netlist).expect("isomorphic circuits");
    assert!(
        wire.report.boxes > 0,
        "per-request stats should be populated"
    );
    assert!(wire.report.total_ns > 0);

    // Lint over the wire vs the oracle (same config, same layout).
    let config = LintConfig::new();
    let (wire_diags, report) = client.lint("chain", &config).expect("lint");
    let mut oracle = in_process(&cif);
    let mut extraction = oracle.extract("aced").expect("oracle extracts");
    let oracle_diags = lint_extraction(&mut extraction, oracle.layout(), &config, &NullProbe);
    assert_eq!(wire_diags.len(), oracle_diags.len());
    for (wire_d, oracle_d) in wire_diags.iter().zip(&oracle_diags) {
        assert_eq!(wire_d.rendered, oracle_d.render());
    }
    assert_eq!(report.lints_emitted, oracle_diags.len() as i64);

    // query-net: every named net the oracle knows answers identically
    // over the wire — including the parasitic R/C — and a bogus name
    // answers found=false, not an error.
    let params = ParasiticParams::nmos();
    let mut named = 0;
    let mut loaded = 0;
    for (id, net) in extraction.netlist.nets() {
        let Some(name) = net.names.first() else {
            continue;
        };
        named += 1;
        let info = client.query_net("chain", name).expect("query-net");
        assert!(info.found, "net '{name}' should resolve");
        assert_eq!(info.names, net.names);
        let gates = extraction
            .netlist
            .devices()
            .iter()
            .filter(|d| d.gate == id)
            .count();
        assert_eq!(info.gates, gates as i64, "gate count for '{name}'");
        assert_eq!(
            info.cap_af,
            net_capacitance_af(&net.parasitics, &params),
            "wire capacitance for '{name}'"
        );
        assert_eq!(
            info.res_mohm,
            net_resistance_mohm(&net.parasitics, &params),
            "wire resistance for '{name}'"
        );
        if info.cap_af > 0 {
            loaded += 1;
        }
    }
    assert!(named > 0, "workload should have labelled nets");
    assert!(loaded > 0, "some net should carry real wire capacitance");
    let missing = client.query_net("chain", "no-such-net").expect("query-net");
    assert!(!missing.found);
    assert!(missing.names.is_empty());
    assert_eq!((missing.cap_af, missing.res_mohm), (0, 0));

    daemon.join();
}

#[test]
fn edit_diff_matches_full_in_process_reextraction() {
    let cif = mesh_cif(6);
    let (daemon, mut client) = daemon_and_client(ServiceConfig::default());
    client
        .open("mesh", &cif, BANDS, ExtractOptions::new())
        .expect("open");
    let first = client.extract("mesh").expect("first extract");

    let mut oracle = in_process(&cif);
    oracle.extract("aced").expect("oracle warms");
    // One local edit: drop the bottom poly row (6 transistors). Only
    // the bottom band is dirtied, so the resident cache must pay off.
    let mut diff = ace_layout::LayoutDiff::new();
    diff.remove_box(
        ace_geom::Layer::Poly,
        ace_geom::Rect::new(-MESH_PITCH, 0, 6 * MESH_PITCH, MESH_LINE),
    );
    assert!(!diff.is_empty());

    let edited = client.edit_diff("mesh", &diff).expect("edit-diff");
    oracle.apply(&diff).expect("oracle applies diff");
    let extraction = oracle.extract("aced").expect("oracle re-extracts");
    let oracle_text = write_wirelist(&extraction.netlist, WirelistOptions::new());
    assert_eq!(edited.wirelist, oracle_text, "incremental result drifted");
    assert_ne!(
        edited.wirelist, first.wirelist,
        "edits should change the circuit"
    );
    // The session kept its cache warm between the two requests, so
    // the second sweep reuses clean bands.
    assert!(
        edited.report.bands_reused > 0,
        "resident session should reuse bands: {:?}",
        edited.report
    );

    daemon.join();
}

#[test]
fn error_codes_are_stable_over_the_wire() {
    let (daemon, mut client) = daemon_and_client(ServiceConfig::default());

    let err = service_error(client.extract("ghost").expect_err("unknown session"));
    assert_eq!(err.code, ErrorCode::UnknownSession);

    let err = service_error(
        client
            .open("bad", "L ND; B 10 10", BANDS, ExtractOptions::new())
            .expect_err("truncated CIF"),
    );
    assert_eq!(err.code, ErrorCode::ParseError);

    let cif = chained_inverters_cif(2);
    client
        .open("s", &cif, BANDS, ExtractOptions::new())
        .expect("open");
    let err = service_error(
        client
            .open("s", &cif, BANDS, ExtractOptions::new())
            .expect_err("duplicate open"),
    );
    assert_eq!(err.code, ErrorCode::SessionExists);

    // Sessions own banding; options smuggling threads is refused.
    let err = service_error(
        client
            .open("t", &cif, BANDS, ExtractOptions::new().with_threads(2))
            .expect_err("threads option"),
    );
    assert_eq!(err.code, ErrorCode::BadRequest);

    assert!(client.close("s").expect("close"));
    assert!(!client.close("s").expect("close again"));
    let err = service_error(client.extract("s").expect_err("closed session"));
    assert_eq!(err.code, ErrorCode::UnknownSession);

    daemon.join();
}

#[test]
fn zero_budget_evicts_cold_sessions_and_results_stay_correct() {
    let config = ServiceConfig {
        memory_budget: 0,
        ..ServiceConfig::default()
    };
    let (daemon, mut client) = daemon_and_client(config);
    let cif_a = chained_inverters_cif(4);
    let cif_b = mesh_cif(4);
    client
        .open("a", &cif_a, BANDS, ExtractOptions::new())
        .expect("open a");
    client
        .open("b", &cif_b, BANDS, ExtractOptions::new())
        .expect("open b");

    let a1 = client.extract("a").expect("extract a");
    // b's request makes a the coldest cache-holding session: evicted.
    client.extract("b").expect("extract b");
    let status = client.status().expect("status");
    assert!(status.evictions >= 1, "evictor should have run: {status:?}");
    assert_eq!(status.sessions, 2, "eviction drops caches, not sessions");

    // An evicted session still answers — it just pays a cold sweep.
    let a2 = client.extract("a").expect("extract a after eviction");
    assert_eq!(a2.wirelist, a1.wirelist);
    assert_eq!(a2.report.bands_reused, 0, "cold re-sweep reuses nothing");

    daemon.join();
}

#[test]
fn unix_socket_serves_the_same_protocol() {
    let path = std::env::temp_dir().join(format!("aced-e2e-{}.sock", std::process::id()));
    let daemon = Daemon::new(ServiceConfig::default());
    daemon.serve_unix(&path).expect("bind unix socket");
    let mut client = Client::connect_unix(&path).expect("connect unix");

    let cif = chained_inverters_cif(3);
    client
        .open("u", &cif, BANDS, ExtractOptions::new())
        .expect("open");
    let wire = client.extract("u").expect("extract");
    let mut oracle = in_process(&cif);
    let extraction = oracle.extract("aced").expect("oracle extracts");
    assert_eq!(
        wire.wirelist,
        write_wirelist(&extraction.netlist, WirelistOptions::new())
    );

    let status = client.status().expect("status");
    assert_eq!(status.sessions, 1);
    assert!(status.workers >= 1);

    daemon.join();
    assert!(!path.exists(), "socket file should be unlinked on shutdown");
}

#[test]
fn concurrent_clients_share_sessions_and_all_get_answers() {
    let (daemon, mut client) = daemon_and_client(ServiceConfig::default());
    let cif = mesh_cif(5);
    client
        .open("shared", &cif, BANDS, ExtractOptions::new())
        .expect("open");
    let expected = client.extract("shared").expect("extract").wirelist;

    let addr_probe = client.status().expect("status");
    assert!(addr_probe.executed >= 2);

    let mut oracle = in_process(&cif);
    let oracle_text = write_wirelist(
        &oracle.extract("aced").expect("oracle").netlist,
        WirelistOptions::new(),
    );
    assert_eq!(expected, oracle_text);

    // Four clients hammer the same session; the session mutex
    // serializes them and everyone sees the same answer.
    let daemon_for_clients = daemon.clone();
    let addr = {
        // Re-derive a TCP endpoint for the worker clients.
        daemon_for_clients
            .serve_tcp("127.0.0.1:0")
            .expect("second listener")
    };
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let addr = addr.to_string();
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect_tcp(&addr).expect("connect");
                for _ in 0..3 {
                    let got = c.extract("shared").expect("extract").wirelist;
                    assert_eq!(got, expected);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }

    let status = client.status().expect("status");
    assert!(
        status.executed >= 14,
        "12 worker extracts + setup: {status:?}"
    );

    daemon.join();
}
