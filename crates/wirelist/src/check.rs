//! A static checker over extracted netlists.
//!
//! "A static checker performs ratio checks, detects malformed
//! transistors, and checks for signals that are stuck at logical 0
//! or 1." (ACE paper §1.) This module is the post-processor that
//! sentence describes: it consumes the extractor's wirelist — the
//! whole point of extraction being to feed tools like this — and
//! reports NMOS design-discipline violations.
//!
//! Checks implemented:
//!
//! * **rails** — VDD/GND nets exist and are distinct.
//! * **ratio** — for each depletion load driving an output, every
//!   enhancement pull-down on that output must satisfy the
//!   Mead–Conway inverter ratio `(L/W)pu / (L/W)pd ≥ k` (k = 4 for
//!   restoring logic driven by gates).
//! * **stuck-at** — an output with a pull-up but no pull-down is
//!   stuck at 1; a net pulled down but never up is stuck at 0 (unless
//!   it is an input: inputs have no drivers at all).
//! * **malformed transistors** — shorted source/drain, gate tied to
//!   both rails' device terminals, and extraction-reported capacitors
//!   in positions where a transistor was clearly intended.
//! * **floating gates** — a gate net with no other connection.
//!
//! # Examples
//!
//! ```
//! use ace_wirelist::check::{check_netlist, CheckOptions};
//! use ace_wirelist::{Device, DeviceKind, Netlist};
//! use ace_geom::Point;
//!
//! let mut nl = Netlist::new();
//! let vdd = nl.add_net();
//! let gnd = nl.add_net();
//! let out = nl.add_net();
//! nl.add_name(vdd, "VDD");
//! nl.add_name(gnd, "GND");
//! // A depletion pull-up with no pull-down: OUT is stuck at 1.
//! nl.add_device(Device {
//!     kind: DeviceKind::Depletion,
//!     gate: out, source: vdd, drain: out,
//!     length: 2000, width: 500,
//!     location: Point::ORIGIN, channel_geometry: vec![],
//! });
//! let report = check_netlist(&nl, &CheckOptions::default());
//! assert!(report.iter().any(|d| d.to_string().contains("stuck at 1")));
//! ```

use std::fmt;

use crate::model::{DeviceKind, NetId, Netlist};

/// Options for [`check_netlist`].
#[derive(Debug, Clone, PartialEq)]
pub struct CheckOptions {
    /// Minimum pull-up/pull-down impedance ratio (Mead–Conway: 4).
    pub min_ratio: f64,
    /// Names recognized as the positive rail.
    pub vdd_names: Vec<String>,
    /// Names recognized as ground.
    pub gnd_names: Vec<String>,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            min_ratio: 4.0,
            vdd_names: vec!["VDD".into(), "Vdd".into(), "vdd".into(), "POWER".into()],
            gnd_names: vec!["GND".into(), "Gnd".into(), "gnd".into(), "VSS".into()],
        }
    }
}

/// One diagnostic from the static checker.
#[derive(Debug, Clone, PartialEq)]
pub enum Diagnostic {
    /// No net carries a recognized rail name.
    MissingRail {
        /// `"VDD"` or `"GND"`.
        rail: &'static str,
    },
    /// VDD and GND resolve to the same net — a power short.
    ShortedRails,
    /// A pull-up/pull-down pair violates the inverter ratio rule.
    RatioViolation {
        /// The driven output net.
        output: NetId,
        /// Index of the depletion load in the device list.
        pullup: usize,
        /// Index of the offending enhancement pull-down.
        pulldown: usize,
        /// The measured (L/W)pu / (L/W)pd.
        ratio: f64,
    },
    /// A net with a pull-up but no path that can ever pull it low.
    StuckAtOne {
        /// The stuck net.
        net: NetId,
    },
    /// A net pulled toward ground but never toward VDD.
    StuckAtZero {
        /// The stuck net.
        net: NetId,
    },
    /// A transistor whose source and drain are the same net.
    ShortedTransistor {
        /// Index in the device list.
        device: usize,
    },
    /// A transistor bridging VDD and GND with its channel.
    RailBridge {
        /// Index in the device list.
        device: usize,
    },
    /// A gate net that connects to nothing else (and carries no name,
    /// so it cannot be an external input).
    FloatingGate {
        /// Index in the device list.
        device: usize,
        /// The floating gate net.
        gate: NetId,
    },
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Diagnostic::MissingRail { rail } => write!(f, "no net named like {rail}"),
            Diagnostic::ShortedRails => write!(f, "VDD and GND are the same net"),
            Diagnostic::RatioViolation {
                output,
                pullup,
                pulldown,
                ratio,
            } => write!(
                f,
                "net {output}: pull-up D{pullup} vs pull-down D{pulldown} \
                 ratio {ratio:.2} below the required minimum"
            ),
            Diagnostic::StuckAtOne { net } => {
                write!(f, "net {net} is stuck at 1 (pull-up, no pull-down)")
            }
            Diagnostic::StuckAtZero { net } => {
                write!(f, "net {net} is stuck at 0 (pull-down, no pull-up)")
            }
            Diagnostic::ShortedTransistor { device } => {
                write!(f, "device D{device} has source shorted to drain")
            }
            Diagnostic::RailBridge { device } => {
                write!(f, "device D{device} bridges VDD and GND directly")
            }
            Diagnostic::FloatingGate { device, gate } => {
                write!(f, "device D{device} gate (net {gate}) is floating")
            }
        }
    }
}

/// Runs all static checks over a netlist.
///
/// Rails are identified by name ([`CheckOptions::vdd_names`] /
/// [`CheckOptions::gnd_names`]); without both rails only the
/// rail-independent checks run.
pub fn check_netlist(netlist: &Netlist, options: &CheckOptions) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    let find_rail =
        |names: &[String]| -> Option<NetId> { names.iter().find_map(|n| netlist.net_by_name(n)) };
    let vdd = find_rail(&options.vdd_names);
    let gnd = find_rail(&options.gnd_names);
    if vdd.is_none() {
        out.push(Diagnostic::MissingRail { rail: "VDD" });
    }
    if gnd.is_none() {
        out.push(Diagnostic::MissingRail { rail: "GND" });
    }
    if let (Some(v), Some(g)) = (vdd, gnd) {
        if v == g {
            out.push(Diagnostic::ShortedRails);
        }
    }

    let deg = netlist.net_degrees();

    // Per-device structural checks.
    for (i, d) in netlist.devices().iter().enumerate() {
        if d.kind != DeviceKind::Capacitor && d.is_shorted() {
            out.push(Diagnostic::ShortedTransistor { device: i });
        }
        if let (Some(v), Some(g)) = (vdd, gnd) {
            let sd = [d.source, d.drain];
            if sd.contains(&v) && sd.contains(&g) {
                out.push(Diagnostic::RailBridge { device: i });
            }
        }
        // A floating gate: the gate net touches only this one
        // terminal and has no name that would mark it as a chip
        // input/output.
        if deg[d.gate.0 as usize] == 1 && netlist.net(d.gate).names.is_empty() {
            out.push(Diagnostic::FloatingGate {
                device: i,
                gate: d.gate,
            });
        }
    }

    let (Some(vdd), Some(gnd)) = (vdd, gnd) else {
        return out;
    };

    // Pull-up / pull-down structure per net.
    let other = |d: &crate::model::Device, n: NetId| -> Option<NetId> {
        if d.source == n {
            Some(d.drain)
        } else if d.drain == n {
            Some(d.source)
        } else {
            None
        }
    };
    // pullups[net] = indexes of depletion loads whose other terminal
    // is VDD; pulldown_nets = nets with a channel path step toward
    // GND (one transistor deep — series chains count through their
    // intermediate nets).
    let n = netlist.net_count();
    let mut pullups: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut pulled_down = vec![false; n];
    for (i, d) in netlist.devices().iter().enumerate() {
        if d.kind == DeviceKind::Capacitor {
            continue;
        }
        for net in [d.source, d.drain] {
            if net == vdd || net == gnd {
                continue;
            }
            if d.kind == DeviceKind::Depletion && other(d, net) == Some(vdd) {
                pullups[net.0 as usize].push(i);
            }
            // Any channel step away from VDD can participate in a
            // pull-down path; require it to eventually reach GND via
            // a simple reachability pass below.
            let _ = net;
        }
    }
    // Reachability to GND through enhancement channels (gates assumed
    // drivable): a net is pull-down-connected if some enhancement
    // transistor links it (transitively) to GND.
    {
        let mut frontier = vec![gnd];
        let mut seen = vec![false; n];
        seen[gnd.0 as usize] = true;
        while let Some(net) = frontier.pop() {
            for d in netlist.devices() {
                if d.kind != DeviceKind::Enhancement {
                    continue;
                }
                if let Some(o) = other(d, net) {
                    if !seen[o.0 as usize] {
                        seen[o.0 as usize] = true;
                        pulled_down[o.0 as usize] = true;
                        frontier.push(o);
                    }
                }
            }
        }
    }

    for net in 0..n as u32 {
        let id = NetId(net);
        if id == vdd || id == gnd {
            continue;
        }
        let has_pu = !pullups[net as usize].is_empty();
        let has_pd = pulled_down[net as usize];
        if has_pu && !has_pd {
            out.push(Diagnostic::StuckAtOne { net: id });
        }
        // Stuck at 0: pulled down, never pulled up, and not merely an
        // interior node of a series chain (those have degree 2 with
        // no gate attachments; skip unnamed degree-2 nets).
        if !has_pu && has_pd {
            let gates_here = netlist.devices().iter().filter(|d| d.gate == id).count();
            let interior = deg[net as usize] == 2 && gates_here == 0;
            if gates_here > 0 && !interior {
                out.push(Diagnostic::StuckAtZero { net: id });
            }
        }
    }

    // Ratio check: every (pull-up, direct pull-down) pair on an
    // output.
    for net in 0..n as u32 {
        let id = NetId(net);
        for &pu in &pullups[net as usize] {
            let pud = &netlist.devices()[pu];
            let z_pu = pud.length as f64 / pud.width as f64;
            for (pd, pdd) in netlist.devices().iter().enumerate() {
                if pdd.kind != DeviceKind::Enhancement {
                    continue;
                }
                // Direct pull-down: the other terminal is GND.
                if other(pdd, id) == Some(gnd) {
                    let z_pd = pdd.length as f64 / pdd.width as f64;
                    let ratio = z_pu / z_pd;
                    if ratio + 1e-9 < options.min_ratio {
                        out.push(Diagnostic::RatioViolation {
                            output: id,
                            pullup: pu,
                            pulldown: pd,
                            ratio,
                        });
                    }
                }
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Device;
    use ace_geom::Point;

    fn device(
        kind: DeviceKind,
        gate: NetId,
        source: NetId,
        drain: NetId,
        l: i64,
        w: i64,
    ) -> Device {
        Device {
            kind,
            gate,
            source,
            drain,
            length: l,
            width: w,
            location: Point::ORIGIN,
            channel_geometry: vec![],
        }
    }

    /// A well-ratioed inverter: pull-up L/W = 8/2, pull-down 2/2 →
    /// ratio 4.
    fn good_inverter() -> (Netlist, NetId, NetId, NetId, NetId) {
        let mut nl = Netlist::new();
        let vdd = nl.add_net();
        let gnd = nl.add_net();
        let inp = nl.add_net();
        let out = nl.add_net();
        nl.add_name(vdd, "VDD");
        nl.add_name(gnd, "GND");
        nl.add_name(inp, "IN");
        nl.add_device(device(DeviceKind::Depletion, out, vdd, out, 8, 2));
        nl.add_device(device(DeviceKind::Enhancement, inp, out, gnd, 2, 2));
        (nl, vdd, gnd, inp, out)
    }

    #[test]
    fn clean_inverter_passes() {
        let (nl, ..) = good_inverter();
        let report = check_netlist(&nl, &CheckOptions::default());
        assert!(report.is_empty(), "{report:?}");
    }

    #[test]
    fn weak_pullup_ratio_flagged() {
        let (mut nl, vdd, gnd, inp, out) = good_inverter();
        // Add a second pull-down that is far too resistive (4 squares
        // instead of 1): the pull-up can no longer out-drive it.
        nl.add_device(device(DeviceKind::Enhancement, inp, out, gnd, 8, 2));
        let report = check_netlist(&nl, &CheckOptions::default());
        assert!(
            report
                .iter()
                .any(|d| matches!(d, Diagnostic::RatioViolation { ratio, .. } if *ratio < 4.0)),
            "{report:?}"
        );
        let _ = vdd;
    }

    #[test]
    fn stuck_at_one_detected() {
        let mut nl = Netlist::new();
        let vdd = nl.add_net();
        let gnd = nl.add_net();
        let out = nl.add_net();
        nl.add_name(vdd, "VDD");
        nl.add_name(gnd, "GND");
        nl.add_device(device(DeviceKind::Depletion, out, vdd, out, 8, 2));
        let report = check_netlist(&nl, &CheckOptions::default());
        assert!(
            report.contains(&Diagnostic::StuckAtOne { net: out }),
            "{report:?}"
        );
    }

    #[test]
    fn stuck_at_zero_detected() {
        let mut nl = Netlist::new();
        let vdd = nl.add_net();
        let gnd = nl.add_net();
        let inp = nl.add_net();
        let out = nl.add_net();
        nl.add_name(vdd, "VDD");
        nl.add_name(gnd, "GND");
        nl.add_name(inp, "IN");
        // OUT is pulled down and also gates something, but nothing
        // ever pulls it up.
        nl.add_device(device(DeviceKind::Enhancement, inp, out, gnd, 2, 2));
        let sink = nl.add_net();
        nl.add_device(device(DeviceKind::Depletion, sink, vdd, sink, 8, 2));
        nl.add_device(device(DeviceKind::Enhancement, out, sink, gnd, 2, 2));
        let report = check_netlist(&nl, &CheckOptions::default());
        assert!(
            report.contains(&Diagnostic::StuckAtZero { net: out }),
            "{report:?}"
        );
    }

    #[test]
    fn series_chain_interior_nodes_are_not_stuck() {
        // A NAND: two enhancement transistors in series; the interior
        // node must not be reported.
        let mut nl = Netlist::new();
        let vdd = nl.add_net();
        let gnd = nl.add_net();
        let a = nl.add_net();
        let b = nl.add_net();
        let out = nl.add_net();
        let mid = nl.add_net();
        nl.add_name(vdd, "VDD");
        nl.add_name(gnd, "GND");
        nl.add_name(a, "A");
        nl.add_name(b, "B");
        nl.add_device(device(DeviceKind::Depletion, out, vdd, out, 16, 2));
        nl.add_device(device(DeviceKind::Enhancement, a, out, mid, 2, 2));
        nl.add_device(device(DeviceKind::Enhancement, b, mid, gnd, 2, 2));
        let report = check_netlist(&nl, &CheckOptions::default());
        assert!(
            !report.iter().any(|d| matches!(
                d,
                Diagnostic::StuckAtZero { net } | Diagnostic::StuckAtOne { net } if *net == mid
            )),
            "{report:?}"
        );
    }

    #[test]
    fn shorted_transistor_and_rail_bridge() {
        let (mut nl, vdd, gnd, inp, _out) = good_inverter();
        let x = nl.add_net();
        nl.add_device(device(DeviceKind::Enhancement, inp, x, x, 2, 2));
        nl.add_device(device(DeviceKind::Enhancement, inp, vdd, gnd, 2, 2));
        let report = check_netlist(&nl, &CheckOptions::default());
        assert!(report
            .iter()
            .any(|d| matches!(d, Diagnostic::ShortedTransistor { device: 2 })));
        assert!(report
            .iter()
            .any(|d| matches!(d, Diagnostic::RailBridge { device: 3 })));
    }

    #[test]
    fn floating_gate_detected_but_named_inputs_pass() {
        let (nl, ..) = good_inverter(); // IN is named: no complaint
        assert!(check_netlist(&nl, &CheckOptions::default()).is_empty());

        let mut nl = Netlist::new();
        let vdd = nl.add_net();
        let gnd = nl.add_net();
        let out = nl.add_net();
        let floating = nl.add_net(); // unnamed, touches only the gate
        nl.add_name(vdd, "VDD");
        nl.add_name(gnd, "GND");
        nl.add_device(device(DeviceKind::Depletion, out, vdd, out, 8, 2));
        nl.add_device(device(DeviceKind::Enhancement, floating, out, gnd, 2, 2));
        let report = check_netlist(&nl, &CheckOptions::default());
        assert!(
            report
                .iter()
                .any(|d| matches!(d, Diagnostic::FloatingGate { .. })),
            "{report:?}"
        );
    }

    #[test]
    fn missing_rails_reported() {
        let nl = Netlist::new();
        let report = check_netlist(&nl, &CheckOptions::default());
        assert_eq!(
            report,
            vec![
                Diagnostic::MissingRail { rail: "VDD" },
                Diagnostic::MissingRail { rail: "GND" }
            ]
        );
    }

    #[test]
    fn shorted_rails_reported() {
        let mut nl = Netlist::new();
        let rail = nl.add_net();
        nl.add_name(rail, "VDD");
        nl.add_name(rail, "GND");
        let report = check_netlist(&nl, &CheckOptions::default());
        assert!(report.contains(&Diagnostic::ShortedRails));
    }
}
