//! Netlist equivalence checking.
//!
//! "If a circuit's schematic diagram is available to the designer, it
//! can be compared to the extracted circuit: if the two are
//! equivalent, the layout corresponds to the original circuit."
//! (paper §1.) In this reproduction the comparator's main job is
//! validating the hierarchical extractor against the flat one: both
//! extract the same layout, so their netlists must be isomorphic.
//!
//! Two comparison modes are provided:
//!
//! * [`same_circuit`] — exact matching keyed by device location.
//!   Devices extracted from the same layout land at the same channel
//!   coordinates, so the net correspondence is forced and any
//!   discrepancy is reported precisely. Source/drain are treated as
//!   interchangeable (a MOS transistor is symmetric, and the two
//!   extractors may label the diffusion terminals in either order).
//! * [`structural_signature`] — a location-independent canonical hash
//!   via iterative partition refinement (the classic
//!   netlist-isomorphism heuristic). Equal signatures strongly
//!   suggest isomorphic circuits; differing signatures prove
//!   non-isomorphism.
//!
//! When a comparison fails, [`explain_mismatch`] upgrades the first
//! [`CircuitDiff`] into a [`MismatchReport`] — a readable, multi-line
//! account of *where* the two circuits part ways (unmatched device
//! locations, conflicting net bindings, counts, and signatures) —
//! which is what the conformance harness writes next to its repro
//! files.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;
use std::hash::{Hash, Hasher};

use crate::model::{NetId, Netlist};

/// A discrepancy found by [`same_circuit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CircuitDiff {
    /// The two netlists have different device counts.
    DeviceCount {
        /// Count in the left netlist.
        left: usize,
        /// Count in the right netlist.
        right: usize,
    },
    /// No counterpart at this location (or kind/size differs there).
    DeviceMismatch {
        /// Description of the unmatched device.
        detail: String,
    },
    /// The forced net correspondence is inconsistent.
    NetMismatch {
        /// Description of the conflict.
        detail: String,
    },
    /// A user net name maps to non-corresponding nets.
    NameMismatch {
        /// The conflicting name.
        name: String,
    },
}

impl fmt::Display for CircuitDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitDiff::DeviceCount { left, right } => {
                write!(f, "device counts differ: {left} vs {right}")
            }
            CircuitDiff::DeviceMismatch { detail } => {
                write!(f, "device mismatch: {detail}")
            }
            CircuitDiff::NetMismatch { detail } => write!(f, "net mismatch: {detail}"),
            CircuitDiff::NameMismatch { name } => {
                write!(f, "net name '{name}' maps inconsistently")
            }
        }
    }
}

impl Error for CircuitDiff {}

/// Checks that two netlists describe the same circuit, matching
/// devices by channel location.
///
/// # Errors
///
/// Returns the first [`CircuitDiff`] found.
///
/// # Examples
///
/// ```
/// use ace_wirelist::compare::same_circuit;
/// use ace_wirelist::{Device, DeviceKind, Netlist};
/// use ace_geom::Point;
///
/// let build = |swap: bool| {
///     let mut nl = Netlist::new();
///     let a = nl.add_net();
///     let b = nl.add_net();
///     let g = nl.add_net();
///     nl.add_device(Device {
///         kind: DeviceKind::Enhancement,
///         gate: g,
///         source: if swap { b } else { a },
///         drain: if swap { a } else { b },
///         length: 2, width: 2,
///         location: Point::new(0, 0),
///         channel_geometry: vec![],
///     });
///     nl
/// };
/// // Source/drain order is immaterial.
/// assert!(same_circuit(&build(false), &build(true)).is_ok());
/// ```
pub fn same_circuit(left: &Netlist, right: &Netlist) -> Result<(), CircuitDiff> {
    if left.device_count() != right.device_count() {
        return Err(CircuitDiff::DeviceCount {
            left: left.device_count(),
            right: right.device_count(),
        });
    }

    let sort_key = |nl: &Netlist| {
        let mut order: Vec<usize> = (0..nl.device_count()).collect();
        order.sort_by_key(|&i| {
            let d = &nl.devices()[i];
            (d.location, d.kind, d.length, d.width)
        });
        order
    };
    let lo = sort_key(left);
    let ro = sort_key(right);

    // Forced net correspondence, built terminal by terminal.
    let mut l2r: HashMap<NetId, NetId> = HashMap::new();
    let mut r2l: HashMap<NetId, NetId> = HashMap::new();
    fn bind(
        l2r: &mut HashMap<NetId, NetId>,
        r2l: &mut HashMap<NetId, NetId>,
        l: NetId,
        r: NetId,
        what: &str,
    ) -> Result<(), CircuitDiff> {
        if let Some(&prev) = l2r.get(&l) {
            if prev != r {
                return Err(CircuitDiff::NetMismatch {
                    detail: format!("{what}: left {l} maps to both {prev} and {r}"),
                });
            }
        }
        if let Some(&prev) = r2l.get(&r) {
            if prev != l {
                return Err(CircuitDiff::NetMismatch {
                    detail: format!("{what}: right {r} maps to both {prev} and {l}"),
                });
            }
        }
        l2r.insert(l, r);
        r2l.insert(r, l);
        Ok(())
    }

    // Canonical net labels let us order the symmetric source/drain
    // pair the same way on both sides before binding. Net names seed
    // the labels: when the two diffusion segments of a transistor are
    // structurally symmetric but one carries a CIF `94` name,
    // structure alone cannot decide the orientation, and an arbitrary
    // choice can contradict the name table that is checked below (the
    // conformance fuzzer found exactly this against the banded
    // backend, which stitches terminals in the opposite order).
    let llabel = refinement_labels_seeded(left, true);
    let rlabel = refinement_labels_seeded(right, true);

    for (&li, &ri) in lo.iter().zip(&ro) {
        let mut ld = left.devices()[li].clone();
        let mut rd = right.devices()[ri].clone();
        if llabel[ld.source.0 as usize] > llabel[ld.drain.0 as usize] {
            std::mem::swap(&mut ld.source, &mut ld.drain);
        }
        if rlabel[rd.source.0 as usize] > rlabel[rd.drain.0 as usize] {
            std::mem::swap(&mut rd.source, &mut rd.drain);
        }
        if ld.location != rd.location
            || ld.kind != rd.kind
            || ld.length != rd.length
            || ld.width != rd.width
        {
            return Err(CircuitDiff::DeviceMismatch {
                detail: format!(
                    "left {:?} {}×{} at {} vs right {:?} {}×{} at {}",
                    ld.kind,
                    ld.length,
                    ld.width,
                    ld.location,
                    rd.kind,
                    rd.length,
                    rd.width,
                    rd.location
                ),
            });
        }
        let at = format!("device at {}", ld.location);
        bind(&mut l2r, &mut r2l, ld.gate, rd.gate, &at)?;
        // Source/drain are symmetric: try direct, then swapped.
        let direct_ok = l2r.get(&ld.source).is_none_or(|&r| r == rd.source)
            && l2r.get(&ld.drain).is_none_or(|&r| r == rd.drain)
            && r2l.get(&rd.source).is_none_or(|&l| l == ld.source)
            && r2l.get(&rd.drain).is_none_or(|&l| l == ld.drain);
        if direct_ok {
            bind(&mut l2r, &mut r2l, ld.source, rd.source, &at)?;
            bind(&mut l2r, &mut r2l, ld.drain, rd.drain, &at)?;
        } else {
            bind(&mut l2r, &mut r2l, ld.source, rd.drain, &at)?;
            bind(&mut l2r, &mut r2l, ld.drain, rd.source, &at)?;
        }
    }

    // Names present in both netlists must respect the correspondence.
    let rnames = right.name_table();
    for (name, lnet) in left.name_table() {
        if let (Some(&rnet), Some(&mapped)) = (rnames.get(name), l2r.get(&lnet)) {
            if rnet != mapped {
                return Err(CircuitDiff::NameMismatch {
                    name: name.to_string(),
                });
            }
        }
    }
    Ok(())
}

/// Per-net canonical labels via iterative partition refinement.
/// Isomorphic netlists yield the same label multiset, with
/// corresponding nets carrying equal labels.
fn refinement_labels(nl: &Netlist) -> Vec<u64> {
    refinement_labels_seeded(nl, false)
}

/// [`refinement_labels`] with optional name seeding: when
/// `seed_names` is set, a net's user names contribute to its initial
/// label, so nets that are structurally symmetric but differently
/// named refine apart. [`structural_signature`] must NOT seed names
/// (it promises name independence); [`same_circuit`] does, because it
/// enforces name correspondence anyway.
fn refinement_labels_seeded(nl: &Netlist, seed_names: bool) -> Vec<u64> {
    let n = nl.net_count();
    let mut net_label: Vec<u64> = (0..n)
        .map(|i| {
            let base = 0x9E37_79B9_7F4A_7C15;
            if !seed_names {
                return base;
            }
            let names: Vec<u64> = nl
                .net(NetId(i as u32))
                .names
                .iter()
                .map(|s| hash_str(s))
                .collect();
            if names.is_empty() {
                base
            } else {
                hash_one(&[base, hash_unordered(names)])
            }
        })
        .collect();
    let mut dev_label: Vec<u64> = nl
        .devices()
        .iter()
        .map(|d| hash_one(&[d.kind as u64, d.length as u64, d.width as u64]))
        .collect();

    for _round in 0..3 {
        // Device labels from terminal net labels.
        for (i, d) in nl.devices().iter().enumerate() {
            let sd = hash_unordered(vec![
                net_label[d.source.0 as usize],
                net_label[d.drain.0 as usize],
            ]);
            dev_label[i] = hash_one(&[dev_label[i], net_label[d.gate.0 as usize], sd]);
        }
        // Net labels from attached device labels.
        let mut incidence: Vec<Vec<u64>> = vec![Vec::new(); n];
        for (i, d) in nl.devices().iter().enumerate() {
            incidence[d.gate.0 as usize].push(hash_one(&[dev_label[i], 1]));
            // Source and drain attachments share a role tag.
            incidence[d.source.0 as usize].push(hash_one(&[dev_label[i], 2]));
            incidence[d.drain.0 as usize].push(hash_one(&[dev_label[i], 2]));
        }
        for (id, inc) in incidence.into_iter().enumerate() {
            net_label[id] = hash_one(&[net_label[id], hash_unordered(inc)]);
        }
    }
    net_label
}

/// FNV-1a, used instead of [`std::collections::hash_map::DefaultHasher`]
/// so signatures are stable across toolchains: the conformance corpus
/// checks extracted netlists against signatures recorded in a file,
/// which only works if the hash algorithm never changes under us.
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

fn hash_one(values: &[u64]) -> u64 {
    let mut h = Fnv1a::new();
    values.hash(&mut h);
    h.finish()
}

fn hash_str(s: &str) -> u64 {
    let mut h = Fnv1a::new();
    s.hash(&mut h);
    h.finish()
}

fn hash_unordered(mut values: Vec<u64>) -> u64 {
    values.sort_unstable();
    hash_one(&values)
}

/// Canonical structural hash of a netlist, independent of net/device
/// ordering, net ids, names, and locations.
///
/// Computed by iterative partition refinement: net labels are refined
/// by the multiset of adjacent device labels (tagged with terminal
/// role, source/drain folded together), device labels by their kind,
/// dimensions, and terminal net labels. Three rounds suffice for the
/// circuits in this repository.
///
/// Equal signatures do not *prove* isomorphism (refinement can stall
/// on highly symmetric graphs) but unequal signatures prove
/// non-isomorphism.
pub fn structural_signature(nl: &Netlist) -> u64 {
    let net_label = refinement_labels(nl);
    let mut dev_label: Vec<u64> = nl
        .devices()
        .iter()
        .map(|d| hash_one(&[d.kind as u64, d.length as u64, d.width as u64]))
        .collect();
    for (i, d) in nl.devices().iter().enumerate() {
        let sd = hash_unordered(vec![
            net_label[d.source.0 as usize],
            net_label[d.drain.0 as usize],
        ]);
        dev_label[i] = hash_one(&[dev_label[i], net_label[d.gate.0 as usize], sd]);
    }

    // Drop isolated nets: they carry no circuit information.
    let deg = nl.net_degrees();
    let nets: Vec<u64> = net_label
        .into_iter()
        .zip(&deg)
        .filter(|(_, &d)| d > 0)
        .map(|(l, _)| l)
        .collect();
    hash_one(&[hash_unordered(nets), hash_unordered(dev_label)])
}

/// A human-readable account of the first disagreement between two
/// netlists, produced by [`explain_mismatch`].
///
/// The [`Display`](fmt::Display) form is a multi-line report: the
/// verdict, the headline [`CircuitDiff`], device/net counts and
/// structural signatures for both sides, and a diff-specific `detail`
/// section (unmatched device locations for count mismatches, the
/// conflicting binding for net mismatches, the name tables for name
/// mismatches).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MismatchReport {
    /// The first discrepancy [`same_circuit`] found.
    pub diff: CircuitDiff,
    /// Device count in the left netlist.
    pub left_devices: usize,
    /// Device count in the right netlist.
    pub right_devices: usize,
    /// Net count in the left netlist.
    pub left_nets: usize,
    /// Net count in the right netlist.
    pub right_nets: usize,
    /// [`structural_signature`] of the left netlist.
    pub left_signature: u64,
    /// [`structural_signature`] of the right netlist.
    pub right_signature: u64,
    /// Diff-specific context, one finding per line.
    pub detail: String,
}

impl fmt::Display for MismatchReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "netlists disagree: {}", self.diff)?;
        writeln!(
            f,
            "  left:  {} devices, {} nets, signature {:016x}",
            self.left_devices, self.left_nets, self.left_signature
        )?;
        writeln!(
            f,
            "  right: {} devices, {} nets, signature {:016x}",
            self.right_devices, self.right_nets, self.right_signature
        )?;
        for line in self.detail.lines() {
            writeln!(f, "  {line}")?;
        }
        Ok(())
    }
}

/// A device's matching key: everything [`same_circuit`] compares
/// before wiring.
fn device_key(d: &crate::model::Device) -> String {
    format!("{:?} {}×{} at {}", d.kind, d.length, d.width, d.location)
}

/// Runs [`same_circuit`] and, on failure, explains the first
/// discrepancy in context. Returns `None` when the circuits match.
///
/// # Examples
///
/// ```
/// use ace_wirelist::compare::explain_mismatch;
/// use ace_wirelist::{Device, DeviceKind, Netlist};
/// use ace_geom::Point;
///
/// let mut a = Netlist::new();
/// let mut b = Netlist::new();
/// let (g, s, d) = (b.add_net(), b.add_net(), b.add_net());
/// b.add_device(Device {
///     kind: DeviceKind::Enhancement,
///     gate: g, source: s, drain: d,
///     length: 2, width: 2,
///     location: Point::new(500, 250),
///     channel_geometry: vec![],
/// });
/// let report = explain_mismatch(&a, &b).expect("differ");
/// let text = report.to_string();
/// assert!(text.contains("device counts differ: 0 vs 1"));
/// assert!(text.contains("(500, 250)") || text.contains("500"));
/// ```
pub fn explain_mismatch(left: &Netlist, right: &Netlist) -> Option<MismatchReport> {
    let diff = same_circuit(left, right).err()?;
    let mut detail = String::new();
    match &diff {
        CircuitDiff::DeviceCount { .. } | CircuitDiff::DeviceMismatch { .. } => {
            // Multiset-diff the device keys: every key that appears
            // more often on one side than the other is an unmatched
            // device worth naming.
            let mut census: HashMap<String, i64> = HashMap::new();
            for d in left.devices() {
                *census.entry(device_key(d)).or_default() += 1;
            }
            for d in right.devices() {
                *census.entry(device_key(d)).or_default() -= 1;
            }
            let mut unmatched: Vec<(&str, i64)> = census
                .iter()
                .filter(|&(_, &n)| n != 0)
                .map(|(k, &n)| (k.as_str(), n))
                .collect();
            unmatched.sort();
            if unmatched.is_empty() {
                detail.push_str("every device has a counterpart; the wiring differs\n");
            }
            const SHOWN: usize = 8;
            for (key, n) in unmatched.iter().take(SHOWN) {
                let (side, n) = if *n > 0 { ("left", *n) } else { ("right", -n) };
                let _ = writeln!(detail, "only in {side} (×{n}): {key}");
            }
            if unmatched.len() > SHOWN {
                let _ = writeln!(detail, "… and {} more", unmatched.len() - SHOWN);
            }
        }
        CircuitDiff::NetMismatch { detail: d } => {
            let _ = writeln!(detail, "conflicting net binding: {d}");
            let _ = writeln!(
                detail,
                "(nets are bound device by device in location order; the conflict \
                 is at the first device whose terminals cannot be reconciled)"
            );
        }
        CircuitDiff::NameMismatch { name } => {
            for (side, nl) in [("left", left), ("right", right)] {
                let nets: Vec<String> = nl
                    .name_table()
                    .iter()
                    .map(|(n, id)| format!("{n}→{id}"))
                    .collect();
                let _ = writeln!(detail, "{side} names: {}", nets.join(", "));
            }
            let _ = writeln!(detail, "'{name}' does not respect the net correspondence");
        }
    }
    Some(MismatchReport {
        diff,
        left_devices: left.device_count(),
        right_devices: right.device_count(),
        left_nets: left.net_count(),
        right_nets: right.net_count(),
        left_signature: structural_signature(left),
        right_signature: structural_signature(right),
        detail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Device, DeviceKind};
    use ace_geom::Point;

    fn inverter_chain(n: usize, reorder: bool) -> Netlist {
        let mut nl = Netlist::new();
        let vdd = nl.add_net();
        let gnd = nl.add_net();
        let mut input = nl.add_net();
        nl.add_name(vdd, "VDD");
        nl.add_name(gnd, "GND");
        let mut devices = Vec::new();
        for i in 0..n {
            let out = nl.add_net();
            devices.push(Device {
                kind: DeviceKind::Depletion,
                gate: out,
                source: vdd,
                drain: out,
                length: 8,
                width: 2,
                location: Point::new(i as i64 * 100, 100),
                channel_geometry: vec![],
            });
            devices.push(Device {
                kind: DeviceKind::Enhancement,
                gate: input,
                source: out,
                drain: gnd,
                length: 2,
                width: 8,
                location: Point::new(i as i64 * 100, 0),
                channel_geometry: vec![],
            });
            input = out;
        }
        if reorder {
            devices.reverse();
        }
        for d in devices {
            nl.add_device(d);
        }
        nl
    }

    #[test]
    fn identical_circuits_compare_equal() {
        let a = inverter_chain(4, false);
        let b = inverter_chain(4, true); // same circuit, shuffled order
        assert_eq!(same_circuit(&a, &b), Ok(()));
        assert_eq!(structural_signature(&a), structural_signature(&b));
    }

    #[test]
    fn different_sizes_are_detected() {
        let a = inverter_chain(4, false);
        let b = inverter_chain(5, false);
        assert!(matches!(
            same_circuit(&a, &b),
            Err(CircuitDiff::DeviceCount { .. })
        ));
        assert_ne!(structural_signature(&a), structural_signature(&b));
    }

    #[test]
    fn moved_device_is_detected() {
        let a = inverter_chain(2, false);
        let b = inverter_chain(2, false);
        // Perturb one device's location.
        let mut devs: Vec<Device> = b.devices().to_vec();
        devs[0].location = Point::new(999, 999);
        let mut rebuilt = Netlist::new();
        for _ in 0..b.net_count() {
            rebuilt.add_net();
        }
        for d in devs {
            rebuilt.add_device(d);
        }
        assert!(same_circuit(&a, &rebuilt).is_err());
    }

    #[test]
    fn rewired_circuit_is_detected_structurally() {
        let a = inverter_chain(3, false);
        // Same devices, but break the chain: last enhancement gate
        // tied to VDD instead of the previous stage output.
        let b = inverter_chain(3, false);
        let vdd = b.net_by_name("VDD").unwrap();
        let mut devs: Vec<Device> = b.devices().to_vec();
        let last = devs.len() - 1;
        devs[last].gate = vdd;
        let mut rebuilt = Netlist::new();
        for _ in 0..b.net_count() {
            rebuilt.add_net();
        }
        rebuilt.add_name(vdd, "VDD");
        for d in devs {
            rebuilt.add_device(d);
        }
        assert!(same_circuit(&a, &rebuilt).is_err());
        assert_ne!(structural_signature(&a), structural_signature(&rebuilt));
    }

    #[test]
    fn source_drain_swap_is_tolerated() {
        let a = inverter_chain(3, false);
        let mut devs: Vec<Device> = a.devices().to_vec();
        for d in &mut devs {
            std::mem::swap(&mut d.source, &mut d.drain);
        }
        let mut b = Netlist::new();
        for _ in 0..a.net_count() {
            b.add_net();
        }
        b.add_name(a.net_by_name("VDD").unwrap(), "VDD");
        b.add_name(a.net_by_name("GND").unwrap(), "GND");
        for d in devs {
            b.add_device(d);
        }
        assert_eq!(same_circuit(&a, &b), Ok(()));
        assert_eq!(structural_signature(&a), structural_signature(&b));
    }

    #[test]
    fn name_conflicts_are_detected() {
        let a = inverter_chain(2, false);
        let b = inverter_chain(2, false);
        // Swap names: call GND "VDD" and vice versa.
        let vdd = b.net_by_name("VDD").unwrap();
        let gnd = b.net_by_name("GND").unwrap();
        let mut rebuilt = Netlist::new();
        for _ in 0..b.net_count() {
            rebuilt.add_net();
        }
        rebuilt.add_name(vdd, "GND");
        rebuilt.add_name(gnd, "VDD");
        for d in b.devices() {
            rebuilt.add_device(d.clone());
        }
        assert!(matches!(
            same_circuit(&a, &rebuilt),
            Err(CircuitDiff::NameMismatch { .. })
        ));
    }

    #[test]
    fn explain_mismatch_is_silent_on_matching_circuits() {
        let a = inverter_chain(3, false);
        let b = inverter_chain(3, true);
        assert_eq!(explain_mismatch(&a, &b), None);
    }

    #[test]
    fn count_mismatch_names_the_unmatched_devices() {
        let a = inverter_chain(2, false);
        let b = inverter_chain(3, false);
        let report = explain_mismatch(&a, &b).expect("non-isomorphic");
        assert!(matches!(report.diff, CircuitDiff::DeviceCount { .. }));
        assert_eq!((report.left_devices, report.right_devices), (4, 6));
        assert_ne!(report.left_signature, report.right_signature);
        let text = report.to_string();
        // The extra stage sits at x = 200: both of its devices must be
        // called out as right-only, with their locations.
        assert!(text.contains("device counts differ: 4 vs 6"), "{text}");
        assert!(text.contains("only in right"), "{text}");
        assert!(text.contains("(200, 0)"), "{text}");
        assert!(text.contains("(200, 100)"), "{text}");
    }

    #[test]
    fn moved_device_mismatch_reports_both_locations() {
        let a = inverter_chain(2, false);
        let b = inverter_chain(2, false);
        let mut devs: Vec<Device> = b.devices().to_vec();
        devs[0].location = Point::new(999, 999);
        let mut rebuilt = Netlist::new();
        for _ in 0..b.net_count() {
            rebuilt.add_net();
        }
        for d in devs {
            rebuilt.add_device(d);
        }
        let report = explain_mismatch(&a, &rebuilt).expect("non-isomorphic");
        let text = report.to_string();
        assert!(text.contains("(999, 999)"), "{text}");
        assert!(text.contains("only in left"), "{text}");
        assert!(text.contains("only in right"), "{text}");
    }

    #[test]
    fn rewired_mismatch_points_at_the_wiring() {
        // Same device population, different connectivity: the report
        // must say the devices all match and the wiring differs.
        let a = inverter_chain(3, false);
        let b = inverter_chain(3, false);
        let vdd = b.net_by_name("VDD").unwrap();
        let mut devs: Vec<Device> = b.devices().to_vec();
        let last = devs.len() - 1;
        devs[last].gate = vdd;
        let mut rebuilt = Netlist::new();
        for _ in 0..b.net_count() {
            rebuilt.add_net();
        }
        rebuilt.add_name(vdd, "VDD");
        for d in devs {
            rebuilt.add_device(d);
        }
        let report = explain_mismatch(&a, &rebuilt).expect("non-isomorphic");
        assert!(matches!(report.diff, CircuitDiff::NetMismatch { .. }));
        assert_ne!(report.left_signature, report.right_signature);
        let text = report.to_string();
        assert!(text.contains("conflicting net binding"), "{text}");
    }

    #[test]
    fn name_mismatch_prints_both_name_tables() {
        let a = inverter_chain(2, false);
        let b = inverter_chain(2, false);
        let vdd = b.net_by_name("VDD").unwrap();
        let gnd = b.net_by_name("GND").unwrap();
        let mut rebuilt = Netlist::new();
        for _ in 0..b.net_count() {
            rebuilt.add_net();
        }
        rebuilt.add_name(vdd, "GND");
        rebuilt.add_name(gnd, "VDD");
        for d in b.devices() {
            rebuilt.add_device(d.clone());
        }
        let report = explain_mismatch(&a, &rebuilt).expect("non-isomorphic");
        assert!(matches!(report.diff, CircuitDiff::NameMismatch { .. }));
        let text = report.to_string();
        assert!(text.contains("left names:"), "{text}");
        assert!(text.contains("right names:"), "{text}");
        assert!(text.contains("VDD"), "{text}");
    }

    #[test]
    fn signatures_are_stable_across_processes() {
        // The conformance corpus stores signatures on disk, so the
        // hash must be a pure function of the netlist structure — no
        // per-process randomness, no toolchain-dependent hasher.
        let nl = inverter_chain(3, false);
        let sig = structural_signature(&nl);
        assert_eq!(sig, structural_signature(&inverter_chain(3, false)));
        // FNV-1a of the empty netlist's fixed shape: a constant by
        // construction; recompute rather than hard-code.
        assert_eq!(
            structural_signature(&Netlist::new()),
            structural_signature(&Netlist::new())
        );
    }

    #[test]
    fn empty_netlists_are_equal() {
        assert_eq!(same_circuit(&Netlist::new(), &Netlist::new()), Ok(()));
        assert_eq!(
            structural_signature(&Netlist::new()),
            structural_signature(&Netlist::new())
        );
    }
}
