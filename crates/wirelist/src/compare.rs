//! Netlist equivalence checking.
//!
//! "If a circuit's schematic diagram is available to the designer, it
//! can be compared to the extracted circuit: if the two are
//! equivalent, the layout corresponds to the original circuit."
//! (paper §1.) In this reproduction the comparator's main job is
//! validating the hierarchical extractor against the flat one: both
//! extract the same layout, so their netlists must be isomorphic.
//!
//! Two comparison modes are provided:
//!
//! * [`same_circuit`] — exact matching keyed by device location.
//!   Devices extracted from the same layout land at the same channel
//!   coordinates, so the net correspondence is forced and any
//!   discrepancy is reported precisely. Source/drain are treated as
//!   interchangeable (a MOS transistor is symmetric, and the two
//!   extractors may label the diffusion terminals in either order).
//! * [`structural_signature`] — a location-independent canonical hash
//!   via iterative partition refinement (the classic
//!   netlist-isomorphism heuristic). Equal signatures strongly
//!   suggest isomorphic circuits; differing signatures prove
//!   non-isomorphism.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::model::{NetId, Netlist};

/// A discrepancy found by [`same_circuit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CircuitDiff {
    /// The two netlists have different device counts.
    DeviceCount {
        /// Count in the left netlist.
        left: usize,
        /// Count in the right netlist.
        right: usize,
    },
    /// No counterpart at this location (or kind/size differs there).
    DeviceMismatch {
        /// Description of the unmatched device.
        detail: String,
    },
    /// The forced net correspondence is inconsistent.
    NetMismatch {
        /// Description of the conflict.
        detail: String,
    },
    /// A user net name maps to non-corresponding nets.
    NameMismatch {
        /// The conflicting name.
        name: String,
    },
}

impl fmt::Display for CircuitDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitDiff::DeviceCount { left, right } => {
                write!(f, "device counts differ: {left} vs {right}")
            }
            CircuitDiff::DeviceMismatch { detail } => {
                write!(f, "device mismatch: {detail}")
            }
            CircuitDiff::NetMismatch { detail } => write!(f, "net mismatch: {detail}"),
            CircuitDiff::NameMismatch { name } => {
                write!(f, "net name '{name}' maps inconsistently")
            }
        }
    }
}

impl Error for CircuitDiff {}

/// Checks that two netlists describe the same circuit, matching
/// devices by channel location.
///
/// # Errors
///
/// Returns the first [`CircuitDiff`] found.
///
/// # Examples
///
/// ```
/// use ace_wirelist::compare::same_circuit;
/// use ace_wirelist::{Device, DeviceKind, Netlist};
/// use ace_geom::Point;
///
/// let build = |swap: bool| {
///     let mut nl = Netlist::new();
///     let a = nl.add_net();
///     let b = nl.add_net();
///     let g = nl.add_net();
///     nl.add_device(Device {
///         kind: DeviceKind::Enhancement,
///         gate: g,
///         source: if swap { b } else { a },
///         drain: if swap { a } else { b },
///         length: 2, width: 2,
///         location: Point::new(0, 0),
///         channel_geometry: vec![],
///     });
///     nl
/// };
/// // Source/drain order is immaterial.
/// assert!(same_circuit(&build(false), &build(true)).is_ok());
/// ```
pub fn same_circuit(left: &Netlist, right: &Netlist) -> Result<(), CircuitDiff> {
    if left.device_count() != right.device_count() {
        return Err(CircuitDiff::DeviceCount {
            left: left.device_count(),
            right: right.device_count(),
        });
    }

    let sort_key = |nl: &Netlist| {
        let mut order: Vec<usize> = (0..nl.device_count()).collect();
        order.sort_by_key(|&i| {
            let d = &nl.devices()[i];
            (d.location, d.kind, d.length, d.width)
        });
        order
    };
    let lo = sort_key(left);
    let ro = sort_key(right);

    // Forced net correspondence, built terminal by terminal.
    let mut l2r: HashMap<NetId, NetId> = HashMap::new();
    let mut r2l: HashMap<NetId, NetId> = HashMap::new();
    fn bind(
        l2r: &mut HashMap<NetId, NetId>,
        r2l: &mut HashMap<NetId, NetId>,
        l: NetId,
        r: NetId,
        what: &str,
    ) -> Result<(), CircuitDiff> {
        if let Some(&prev) = l2r.get(&l) {
            if prev != r {
                return Err(CircuitDiff::NetMismatch {
                    detail: format!("{what}: left {l} maps to both {prev} and {r}"),
                });
            }
        }
        if let Some(&prev) = r2l.get(&r) {
            if prev != l {
                return Err(CircuitDiff::NetMismatch {
                    detail: format!("{what}: right {r} maps to both {prev} and {l}"),
                });
            }
        }
        l2r.insert(l, r);
        r2l.insert(r, l);
        Ok(())
    }

    // Canonical net labels let us order the symmetric source/drain
    // pair the same way on both sides before binding.
    let llabel = refinement_labels(left);
    let rlabel = refinement_labels(right);

    for (&li, &ri) in lo.iter().zip(&ro) {
        let mut ld = left.devices()[li].clone();
        let mut rd = right.devices()[ri].clone();
        if llabel[ld.source.0 as usize] > llabel[ld.drain.0 as usize] {
            std::mem::swap(&mut ld.source, &mut ld.drain);
        }
        if rlabel[rd.source.0 as usize] > rlabel[rd.drain.0 as usize] {
            std::mem::swap(&mut rd.source, &mut rd.drain);
        }
        if ld.location != rd.location
            || ld.kind != rd.kind
            || ld.length != rd.length
            || ld.width != rd.width
        {
            return Err(CircuitDiff::DeviceMismatch {
                detail: format!(
                    "left {:?} {}×{} at {} vs right {:?} {}×{} at {}",
                    ld.kind,
                    ld.length,
                    ld.width,
                    ld.location,
                    rd.kind,
                    rd.length,
                    rd.width,
                    rd.location
                ),
            });
        }
        let at = format!("device at {}", ld.location);
        bind(&mut l2r, &mut r2l, ld.gate, rd.gate, &at)?;
        // Source/drain are symmetric: try direct, then swapped.
        let direct_ok = l2r.get(&ld.source).is_none_or(|&r| r == rd.source)
            && l2r.get(&ld.drain).is_none_or(|&r| r == rd.drain)
            && r2l.get(&rd.source).is_none_or(|&l| l == ld.source)
            && r2l.get(&rd.drain).is_none_or(|&l| l == ld.drain);
        if direct_ok {
            bind(&mut l2r, &mut r2l, ld.source, rd.source, &at)?;
            bind(&mut l2r, &mut r2l, ld.drain, rd.drain, &at)?;
        } else {
            bind(&mut l2r, &mut r2l, ld.source, rd.drain, &at)?;
            bind(&mut l2r, &mut r2l, ld.drain, rd.source, &at)?;
        }
    }

    // Names present in both netlists must respect the correspondence.
    let rnames = right.name_table();
    for (name, lnet) in left.name_table() {
        if let (Some(&rnet), Some(&mapped)) = (rnames.get(name), l2r.get(&lnet)) {
            if rnet != mapped {
                return Err(CircuitDiff::NameMismatch {
                    name: name.to_string(),
                });
            }
        }
    }
    Ok(())
}

/// Per-net canonical labels via iterative partition refinement.
/// Isomorphic netlists yield the same label multiset, with
/// corresponding nets carrying equal labels.
fn refinement_labels(nl: &Netlist) -> Vec<u64> {
    let n = nl.net_count();
    let mut net_label: Vec<u64> = vec![0x9E37_79B9_7F4A_7C15; n];
    let mut dev_label: Vec<u64> = nl
        .devices()
        .iter()
        .map(|d| hash_one(&[d.kind as u64, d.length as u64, d.width as u64]))
        .collect();

    for _round in 0..3 {
        // Device labels from terminal net labels.
        for (i, d) in nl.devices().iter().enumerate() {
            let sd = hash_unordered(vec![
                net_label[d.source.0 as usize],
                net_label[d.drain.0 as usize],
            ]);
            dev_label[i] = hash_one(&[dev_label[i], net_label[d.gate.0 as usize], sd]);
        }
        // Net labels from attached device labels.
        let mut incidence: Vec<Vec<u64>> = vec![Vec::new(); n];
        for (i, d) in nl.devices().iter().enumerate() {
            incidence[d.gate.0 as usize].push(hash_one(&[dev_label[i], 1]));
            // Source and drain attachments share a role tag.
            incidence[d.source.0 as usize].push(hash_one(&[dev_label[i], 2]));
            incidence[d.drain.0 as usize].push(hash_one(&[dev_label[i], 2]));
        }
        for (id, inc) in incidence.into_iter().enumerate() {
            net_label[id] = hash_one(&[net_label[id], hash_unordered(inc)]);
        }
    }
    net_label
}

fn hash_one(values: &[u64]) -> u64 {
    let mut h = DefaultHasher::new();
    values.hash(&mut h);
    h.finish()
}

fn hash_unordered(mut values: Vec<u64>) -> u64 {
    values.sort_unstable();
    hash_one(&values)
}

/// Canonical structural hash of a netlist, independent of net/device
/// ordering, net ids, names, and locations.
///
/// Computed by iterative partition refinement: net labels are refined
/// by the multiset of adjacent device labels (tagged with terminal
/// role, source/drain folded together), device labels by their kind,
/// dimensions, and terminal net labels. Three rounds suffice for the
/// circuits in this repository.
///
/// Equal signatures do not *prove* isomorphism (refinement can stall
/// on highly symmetric graphs) but unequal signatures prove
/// non-isomorphism.
pub fn structural_signature(nl: &Netlist) -> u64 {
    let net_label = refinement_labels(nl);
    let mut dev_label: Vec<u64> = nl
        .devices()
        .iter()
        .map(|d| hash_one(&[d.kind as u64, d.length as u64, d.width as u64]))
        .collect();
    for (i, d) in nl.devices().iter().enumerate() {
        let sd = hash_unordered(vec![
            net_label[d.source.0 as usize],
            net_label[d.drain.0 as usize],
        ]);
        dev_label[i] = hash_one(&[dev_label[i], net_label[d.gate.0 as usize], sd]);
    }

    // Drop isolated nets: they carry no circuit information.
    let deg = nl.net_degrees();
    let nets: Vec<u64> = net_label
        .into_iter()
        .zip(&deg)
        .filter(|(_, &d)| d > 0)
        .map(|(l, _)| l)
        .collect();
    hash_one(&[hash_unordered(nets), hash_unordered(dev_label)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Device, DeviceKind};
    use ace_geom::Point;

    fn inverter_chain(n: usize, reorder: bool) -> Netlist {
        let mut nl = Netlist::new();
        let vdd = nl.add_net();
        let gnd = nl.add_net();
        let mut input = nl.add_net();
        nl.add_name(vdd, "VDD");
        nl.add_name(gnd, "GND");
        let mut devices = Vec::new();
        for i in 0..n {
            let out = nl.add_net();
            devices.push(Device {
                kind: DeviceKind::Depletion,
                gate: out,
                source: vdd,
                drain: out,
                length: 8,
                width: 2,
                location: Point::new(i as i64 * 100, 100),
                channel_geometry: vec![],
            });
            devices.push(Device {
                kind: DeviceKind::Enhancement,
                gate: input,
                source: out,
                drain: gnd,
                length: 2,
                width: 8,
                location: Point::new(i as i64 * 100, 0),
                channel_geometry: vec![],
            });
            input = out;
        }
        if reorder {
            devices.reverse();
        }
        for d in devices {
            nl.add_device(d);
        }
        nl
    }

    #[test]
    fn identical_circuits_compare_equal() {
        let a = inverter_chain(4, false);
        let b = inverter_chain(4, true); // same circuit, shuffled order
        assert_eq!(same_circuit(&a, &b), Ok(()));
        assert_eq!(structural_signature(&a), structural_signature(&b));
    }

    #[test]
    fn different_sizes_are_detected() {
        let a = inverter_chain(4, false);
        let b = inverter_chain(5, false);
        assert!(matches!(
            same_circuit(&a, &b),
            Err(CircuitDiff::DeviceCount { .. })
        ));
        assert_ne!(structural_signature(&a), structural_signature(&b));
    }

    #[test]
    fn moved_device_is_detected() {
        let a = inverter_chain(2, false);
        let b = inverter_chain(2, false);
        // Perturb one device's location.
        let mut devs: Vec<Device> = b.devices().to_vec();
        devs[0].location = Point::new(999, 999);
        let mut rebuilt = Netlist::new();
        for _ in 0..b.net_count() {
            rebuilt.add_net();
        }
        for d in devs {
            rebuilt.add_device(d);
        }
        assert!(same_circuit(&a, &rebuilt).is_err());
    }

    #[test]
    fn rewired_circuit_is_detected_structurally() {
        let a = inverter_chain(3, false);
        // Same devices, but break the chain: last enhancement gate
        // tied to VDD instead of the previous stage output.
        let b = inverter_chain(3, false);
        let vdd = b.net_by_name("VDD").unwrap();
        let mut devs: Vec<Device> = b.devices().to_vec();
        let last = devs.len() - 1;
        devs[last].gate = vdd;
        let mut rebuilt = Netlist::new();
        for _ in 0..b.net_count() {
            rebuilt.add_net();
        }
        rebuilt.add_name(vdd, "VDD");
        for d in devs {
            rebuilt.add_device(d);
        }
        assert!(same_circuit(&a, &rebuilt).is_err());
        assert_ne!(structural_signature(&a), structural_signature(&rebuilt));
    }

    #[test]
    fn source_drain_swap_is_tolerated() {
        let a = inverter_chain(3, false);
        let mut devs: Vec<Device> = a.devices().to_vec();
        for d in &mut devs {
            std::mem::swap(&mut d.source, &mut d.drain);
        }
        let mut b = Netlist::new();
        for _ in 0..a.net_count() {
            b.add_net();
        }
        b.add_name(a.net_by_name("VDD").unwrap(), "VDD");
        b.add_name(a.net_by_name("GND").unwrap(), "GND");
        for d in devs {
            b.add_device(d);
        }
        assert_eq!(same_circuit(&a, &b), Ok(()));
        assert_eq!(structural_signature(&a), structural_signature(&b));
    }

    #[test]
    fn name_conflicts_are_detected() {
        let a = inverter_chain(2, false);
        let b = inverter_chain(2, false);
        // Swap names: call GND "VDD" and vice versa.
        let vdd = b.net_by_name("VDD").unwrap();
        let gnd = b.net_by_name("GND").unwrap();
        let mut rebuilt = Netlist::new();
        for _ in 0..b.net_count() {
            rebuilt.add_net();
        }
        rebuilt.add_name(vdd, "GND");
        rebuilt.add_name(gnd, "VDD");
        for d in b.devices() {
            rebuilt.add_device(d.clone());
        }
        assert!(matches!(
            same_circuit(&a, &rebuilt),
            Err(CircuitDiff::NameMismatch { .. })
        ));
    }

    #[test]
    fn empty_netlists_are_equal() {
        assert_eq!(same_circuit(&Netlist::new(), &Netlist::new()), Ok(()));
        assert_eq!(
            structural_signature(&Netlist::new()),
            structural_signature(&Netlist::new())
        );
    }
}
