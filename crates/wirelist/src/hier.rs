use std::fmt;

use ace_geom::Point;

#[cfg(test)]
use crate::model::DeviceKind;
use crate::model::{Device, NetId, Netlist};
use crate::parasitics::NetParasitics;
use crate::union_find::UnionFind;

/// Identifier of a [`PartDef`] within a [`HierNetlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PartId(pub u32);

impl fmt::Display for PartId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// An instantiation of one part inside another (the hierarchical
/// wirelist's `(Part Window1 (Name P1) (NetOffset 13) (LocOffset x y))`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubPart {
    /// The instantiated definition.
    pub part: PartId,
    /// Instance name (`P1`, `P2`, …).
    pub name: String,
    /// Placement offset added to child locations.
    pub loc_offset: Point,
    /// Pairs `(child_net, parent_net)`: the child's exported net is
    /// the parent's local net (the `(Net P1/N0 N13)` statements).
    pub net_map: Vec<(u32, u32)>,
}

/// One `DefPart`: a window's circuit fragment.
///
/// Nets inside a part are local ids `0..net_count`. Exports list the
/// local nets visible from outside; `equivalences` merge local nets
/// (the `(Net N0 N13)` statements produced when composition discovers
/// that two boundary nets are the same signal).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PartDef {
    /// Part name (`Window1`, …).
    pub name: String,
    /// Size of the local net id space.
    pub net_count: u32,
    /// Exported local nets.
    pub exports: Vec<u32>,
    /// Primitive devices; terminal `NetId`s index the local net space.
    pub devices: Vec<Device>,
    /// Child instantiations.
    pub subparts: Vec<SubPart>,
    /// Local-net equivalences discovered during composition.
    pub equivalences: Vec<(u32, u32)>,
    /// User names attached to local nets.
    pub net_names: Vec<(u32, String)>,
    /// Representative locations of local nets.
    pub net_locations: Vec<(u32, Point)>,
    /// Parasitic totals attached to local nets. Entries for the same
    /// net merge additively; composition stores negative perimeter
    /// corrections here for seam edges counted by both child windows.
    pub net_parasitics: Vec<(u32, NetParasitics)>,
}

impl PartDef {
    /// Number of devices in this part alone (children excluded).
    pub fn local_device_count(&self) -> usize {
        self.devices.len()
    }
}

/// A hierarchical wirelist: `DefPart` definitions plus a top part.
///
/// # Examples
///
/// See [`HierNetlist::flatten`] and the `hierarchical` example binary
/// for end-to-end construction; unit tests below build a two-level
/// wirelist by hand.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HierNetlist {
    parts: Vec<PartDef>,
    top: Option<PartId>,
    /// Title, usually the source CIF file name.
    pub name: String,
}

impl HierNetlist {
    /// Creates an empty hierarchical wirelist.
    pub fn new() -> Self {
        HierNetlist::default()
    }

    /// Adds a part definition, returning its id.
    pub fn add_part(&mut self, def: PartDef) -> PartId {
        self.parts.push(def);
        PartId(self.parts.len() as u32 - 1)
    }

    /// Marks the top-level part (the `(Part WindowN (Name Top))` line).
    pub fn set_top(&mut self, id: PartId) {
        self.top = Some(id);
    }

    /// The top-level part.
    pub fn top(&self) -> Option<PartId> {
        self.top
    }

    /// A part by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn part(&self, id: PartId) -> &PartDef {
        &self.parts[id.0 as usize]
    }

    /// All parts in definition order.
    pub fn parts(&self) -> &[PartDef] {
        &self.parts
    }

    /// Total devices in the fully-instantiated circuit (arithmetic
    /// over the DAG, no expansion).
    pub fn instantiated_device_count(&self) -> u64 {
        let Some(top) = self.top else { return 0 };
        let mut memo = vec![None; self.parts.len()];
        self.count_devices(top, &mut memo)
    }

    fn count_devices(&self, id: PartId, memo: &mut Vec<Option<u64>>) -> u64 {
        if let Some(n) = memo[id.0 as usize] {
            return n;
        }
        let part = &self.parts[id.0 as usize];
        let mut n = part.devices.len() as u64;
        for sp in &part.subparts {
            n += self.count_devices(sp.part, memo);
        }
        memo[id.0 as usize] = Some(n);
        n
    }

    /// Fully instantiates the hierarchy into a flat [`Netlist`].
    ///
    /// "The hierarchical wirelist can be flattened by recursively
    /// instantiating all calls to subparts of the top level cell …
    /// the performance … is linear in the number of devices in the
    /// circuit." (HEXT paper §4.)
    ///
    /// # Panics
    ///
    /// Panics if a net map or equivalence references a local net id
    /// outside `0..net_count` of its part.
    pub fn flatten(&self) -> Netlist {
        let mut flat = FlattenState {
            hier: self,
            uf: UnionFind::new(),
            devices: Vec::new(),
            names: Vec::new(),
            locations: Vec::new(),
            parasitics: Vec::new(),
        };
        if let Some(top) = self.top {
            flat.instantiate(top, Point::ORIGIN);
        }

        // Compress union-find classes into dense net ids.
        let (map, net_total) = flat.uf.compress();
        let mut out = Netlist::new();
        out.name = self.name.clone();
        for _ in 0..net_total {
            out.add_net();
        }
        for (handle, name) in flat.names {
            out.add_name(NetId(map[handle as usize]), name);
        }
        for (handle, at) in flat.locations {
            out.set_location(NetId(map[handle as usize]), at);
        }
        for (handle, p) in flat.parasitics {
            out.add_parasitics(NetId(map[handle as usize]), &p);
        }
        for mut d in flat.devices {
            d.gate = NetId(map[d.gate.0 as usize]);
            d.source = NetId(map[d.source.0 as usize]);
            d.drain = NetId(map[d.drain.0 as usize]);
            // A device can be completed inside a window before a later
            // compose merges its two terminal nets. The flat extractor
            // defers classification to the very end and calls such a
            // channel a capacitor; reconcile here. The flat rule is
            // width = total contact length (the sum of the two edges
            // whose mean we took), length = area / width.
            if d.source == d.drain && d.kind != crate::model::DeviceKind::Capacitor {
                let area = d.length * d.width;
                d.kind = crate::model::DeviceKind::Capacitor;
                d.width *= 2;
                d.length = (area / d.width).max(1);
            }
            out.add_device(d);
        }
        out
    }
}

struct FlattenState<'a> {
    hier: &'a HierNetlist,
    uf: UnionFind,
    // Device terminals hold provisional union-find handles until
    // compression.
    devices: Vec<Device>,
    names: Vec<(u32, String)>,
    locations: Vec<(u32, Point)>,
    parasitics: Vec<(u32, NetParasitics)>,
}

impl FlattenState<'_> {
    /// Instantiates `part` at `offset`; returns the union-find handle
    /// of each local net.
    fn instantiate(&mut self, part: PartId, offset: Point) -> Vec<u32> {
        let def = self.hier.part(part);
        let locals: Vec<u32> = (0..def.net_count).map(|_| self.uf.make_set()).collect();
        for &(a, b) in &def.equivalences {
            self.uf.union(locals[a as usize], locals[b as usize]);
        }
        for (net, name) in &def.net_names {
            self.names.push((locals[*net as usize], name.clone()));
        }
        for (net, at) in &def.net_locations {
            self.locations.push((locals[*net as usize], *at + offset));
        }
        for (net, p) in &def.net_parasitics {
            self.parasitics.push((locals[*net as usize], *p));
        }
        for d in &def.devices {
            let mut d = d.clone();
            d.gate = NetId(locals[d.gate.0 as usize]);
            d.source = NetId(locals[d.source.0 as usize]);
            d.drain = NetId(locals[d.drain.0 as usize]);
            d.location += offset;
            for r in &mut d.channel_geometry {
                *r = r.translate(offset);
            }
            self.devices.push(d);
        }
        for sp in &def.subparts {
            let child_locals = self.instantiate(sp.part, offset + sp.loc_offset);
            for &(child_net, parent_net) in &sp.net_map {
                self.uf.union(
                    child_locals[child_net as usize],
                    locals[parent_net as usize],
                );
            }
        }
        locals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the paper's Figure 2-2 structure: an inverter window,
    /// doubled into Window2, doubled again into Window3.
    fn four_inverters() -> HierNetlist {
        let mut h = HierNetlist::new();
        // Window1: nets 0=vdd 1=out 2=in 3=gnd, two devices.
        let w1 = h.add_part(PartDef {
            name: "Window1".into(),
            net_count: 4,
            exports: vec![0, 1, 2, 3],
            devices: vec![
                Device {
                    kind: DeviceKind::Depletion,
                    gate: NetId(1),
                    source: NetId(0),
                    drain: NetId(1),
                    length: 1400,
                    width: 400,
                    location: Point::new(1000, 4600),
                    channel_geometry: vec![],
                },
                Device {
                    kind: DeviceKind::Enhancement,
                    gate: NetId(2),
                    source: NetId(1),
                    drain: NetId(3),
                    length: 400,
                    width: 2800,
                    location: Point::new(600, 1600),
                    channel_geometry: vec![],
                },
            ],
            ..PartDef::default()
        });
        // Window2: two Window1 side by side; vdd and gnd rails join.
        // Local nets: 0..4 from P2's exports, 4..8 from P1's exports.
        let w2 = h.add_part(PartDef {
            name: "Window2".into(),
            net_count: 8,
            exports: vec![0, 1, 2, 3, 4, 5, 6, 7],
            subparts: vec![
                SubPart {
                    part: w1,
                    name: "P2".into(),
                    loc_offset: Point::ORIGIN,
                    net_map: vec![(0, 0), (1, 1), (2, 2), (3, 3)],
                },
                SubPart {
                    part: w1,
                    name: "P1".into(),
                    loc_offset: Point::new(3600, 0),
                    net_map: vec![(0, 4), (1, 5), (2, 6), (3, 7)],
                },
            ],
            // Shared rails; and the left inverter's output drives the
            // right inverter's input.
            equivalences: vec![(0, 4), (3, 7), (1, 6)],
            ..PartDef::default()
        });
        // Window3: two Window2s; chain output 2→input 2.
        let w3 = h.add_part(PartDef {
            name: "Window3".into(),
            net_count: 16,
            exports: (0..16).collect(),
            subparts: vec![
                SubPart {
                    part: w2,
                    name: "P2".into(),
                    loc_offset: Point::ORIGIN,
                    net_map: (0..8).map(|i| (i, i)).collect(),
                },
                SubPart {
                    part: w2,
                    name: "P1".into(),
                    loc_offset: Point::new(7200, 0),
                    net_map: (0..8).map(|i| (i, i + 8)).collect(),
                },
            ],
            equivalences: vec![(0, 8), (3, 11), (5, 10)],
            net_names: vec![(0, "VDD".into()), (3, "GND".into()), (2, "IN".into())],
            ..PartDef::default()
        });
        h.set_top(w3);
        h.name = "four-inverters".into();
        h
    }

    #[test]
    fn device_count_arithmetic() {
        let h = four_inverters();
        assert_eq!(h.instantiated_device_count(), 8);
    }

    #[test]
    fn flatten_produces_the_expected_circuit() {
        let flat = four_inverters().flatten();
        assert_eq!(flat.device_count(), 8);
        assert_eq!(flat.device_census(), (4, 4, 0));
        // Nets: vdd, gnd, in, 4 stage outputs (the last one floating
        // out of the chain) = 7 signal nets.
        let vdd = flat.net_by_name("VDD").expect("VDD net");
        let gnd = flat.net_by_name("GND").expect("GND net");
        let inp = flat.net_by_name("IN").expect("IN net");
        assert_ne!(vdd, gnd);
        let deg = flat.net_degrees();
        // Every depletion source is VDD: 4 terminals.
        assert_eq!(deg[vdd.0 as usize], 4);
        // Every enhancement drain is GND: 4 terminals.
        assert_eq!(deg[gnd.0 as usize], 4);
        // IN drives the first enhancement gate only.
        assert_eq!(deg[inp.0 as usize], 1);
    }

    #[test]
    fn flatten_applies_location_offsets() {
        let flat = four_inverters().flatten();
        let mut xs: Vec<i64> = flat
            .devices()
            .iter()
            .filter(|d| d.kind == DeviceKind::Enhancement)
            .map(|d| d.location.x)
            .collect();
        xs.sort_unstable();
        assert_eq!(xs, vec![600, 4200, 7800, 11400]);
    }

    #[test]
    fn empty_hier_flattens_empty() {
        let h = HierNetlist::new();
        let flat = h.flatten();
        assert_eq!(flat.device_count(), 0);
        assert_eq!(flat.net_count(), 0);
    }

    #[test]
    fn chain_connectivity_survives_flattening() {
        // Output of stage k must equal gate of stage k+1. Check via
        // degrees: interior stage outputs carry dep gate + dep drain +
        // enh source (3) + next enh gate (1) = 4.
        let flat = four_inverters().flatten();
        let deg = flat.net_degrees();
        let interior = deg.iter().filter(|&&d| d == 4).count();
        // vdd(4), gnd(4) also have degree 4: 3 interior outputs + 2 rails.
        assert_eq!(interior, 5);
    }
}
