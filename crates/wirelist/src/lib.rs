//! The CMU hierarchical wirelist format.
//!
//! ACE's output is "a wirelist consisting of a list of transistors
//! and their connectivity … The format used for the wirelist was
//! developed by Ed Frank, Carl Ebeling, and Robert Sproull at CMU.
//! The format is easy to parse and extend because of its LISP like
//! syntax." (paper §3, Figure 3-4; HEXT paper Figure 2-2.)
//!
//! This crate provides:
//!
//! * [`Netlist`] — the flat circuit model: [`Net`]s (with user names,
//!   locations, and optional geometry) and [`Device`]s (transistors
//!   and MOS capacitors with channel length/width).
//! * [`HierNetlist`] — the hierarchical model: `DefPart` definitions
//!   with exports, sub-part instantiations, and net equivalences,
//!   plus a [`HierNetlist::flatten`] operation ("most CAD tools,
//!   especially simulators, require a flat wirelist").
//! * [`write_wirelist`] / [`write_hier_wirelist`] — the LISP-like
//!   text format of the papers' Figures 3-4 and 2-2.
//! * [`parse_wirelist`] — a reader for the flat format.
//! * [`compare`] — netlist equivalence checking, used to validate the
//!   hierarchical extractor against the flat one.
//!
//! # Examples
//!
//! ```
//! use ace_wirelist::{Device, DeviceKind, Netlist};
//! use ace_geom::Point;
//!
//! let mut nl = Netlist::new();
//! let vdd = nl.add_net();
//! let out = nl.add_net();
//! let inp = nl.add_net();
//! let gnd = nl.add_net();
//! nl.add_name(vdd, "VDD");
//! nl.add_device(Device {
//!     kind: DeviceKind::Enhancement,
//!     gate: inp,
//!     source: out,
//!     drain: gnd,
//!     length: 400,
//!     width: 2800,
//!     location: Point::new(-800, -400),
//!     channel_geometry: vec![],
//! });
//! assert_eq!(nl.device_count(), 1);
//! assert_eq!(nl.net_by_name("VDD"), Some(vdd));
//! ```

#![forbid(unsafe_code)]

pub mod check;
pub mod compare;
mod hier;
mod model;
pub mod parasitics;
mod parser;
mod partial;
pub mod sim;
pub mod spice;
pub mod timing;
mod union_find;
mod writer;

pub use hier::{HierNetlist, PartDef, PartId, SubPart};
pub use model::{Device, DeviceDim, DeviceKind, Net, NetId, Netlist};
pub use parasitics::{
    net_capacitance_af, net_resistance_mohm, LayerParams, NetParasitics, ParasiticParams,
};
pub use parser::{parse_wirelist, ParseWirelistError};
pub use partial::PartialDevice;
pub use spice::write_spice;
pub use timing::{critical_path, CriticalPath, Stage};
pub use union_find::UnionFind;
pub use writer::{write_hier_wirelist, write_wirelist, WirelistOptions};
