use std::collections::BTreeMap;
use std::fmt;

use ace_geom::{Coord, Layer, Point, Rect};

use crate::parasitics::NetParasitics;

/// Identifier of a [`Net`] within a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NetId(pub u32);

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

/// The kind of an extracted device.
///
/// "An overlap between diffusion and poly accompanied by the absence
/// of buried results in a potential transistor. The presence of
/// implant determines the type of transistor." (paper §3.) A channel
/// with fewer than two distinct diffusion terminals is reported as a
/// MOS capacitor (the paper's "location and area of capacitors").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DeviceKind {
    /// Enhancement-mode transistor (`nEnh`): no implant over the channel.
    Enhancement,
    /// Depletion-mode transistor (`nDep`): implant covers the channel.
    Depletion,
    /// MOS capacitor: a channel with a single diffusion terminal.
    Capacitor,
}

impl DeviceKind {
    /// The wirelist part name (`nEnh` / `nDep` / `nCap`).
    pub const fn part_name(self) -> &'static str {
        match self {
            DeviceKind::Enhancement => "nEnh",
            DeviceKind::Depletion => "nDep",
            DeviceKind::Capacitor => "nCap",
        }
    }

    /// Parses a wirelist part name.
    pub fn from_part_name(name: &str) -> Option<DeviceKind> {
        match name {
            "nEnh" => Some(DeviceKind::Enhancement),
            "nDep" => Some(DeviceKind::Depletion),
            "nCap" => Some(DeviceKind::Capacitor),
            _ => None,
        }
    }
}

impl fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.part_name())
    }
}

/// An extracted device (transistor or MOS capacitor).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Device {
    /// Device type.
    pub kind: DeviceKind,
    /// The poly net over the channel.
    pub gate: NetId,
    /// One diffusion terminal.
    pub source: NetId,
    /// The other diffusion terminal (equals `source` for capacitors).
    pub drain: NetId,
    /// Channel length: channel area / width.
    pub length: Coord,
    /// Channel width: mean of the source and drain edge lengths.
    pub width: Coord,
    /// Lower-left corner of the channel's bounding box.
    pub location: Point,
    /// The channel boxes (emptied unless geometry output is enabled).
    pub channel_geometry: Vec<Rect>,
}

/// A device's channel dimensions, as validated by [`Device::dim`].
///
/// The `L = area / W` mean-of-edges computation (paper §3) divides by
/// the mean source/drain edge length; a channel whose terminal
/// contacts all have zero length would produce a NaN/∞-style W or L.
/// The finalization paths guard that division and emit `length = 0,
/// width = 0` instead, which this enum surfaces as [`Degenerate`]
/// (`DeviceDim::Degenerate`) so checkers can flag the device rather
/// than propagate a nonsense geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceDim {
    /// A well-formed channel with positive length and width.
    Channel {
        /// Channel length (area / width).
        length: Coord,
        /// Channel width (mean of the source and drain edge lengths).
        width: Coord,
    },
    /// Zero or negative length/width: the channel had no usable
    /// source/drain edges and the `area / width` computation was
    /// skipped.
    Degenerate,
}

impl Device {
    /// Channel area (length × width).
    pub fn channel_area(&self) -> i64 {
        self.length * self.width
    }

    /// The device's validated channel dimensions: `Channel` when both
    /// length and width are positive, [`DeviceDim::Degenerate`]
    /// otherwise.
    pub fn dim(&self) -> DeviceDim {
        if self.length > 0 && self.width > 0 {
            DeviceDim::Channel {
                length: self.length,
                width: self.width,
            }
        } else {
            DeviceDim::Degenerate
        }
    }

    /// `true` when source and drain are the same net — reported as a
    /// capacitor or a "shorted" transistor.
    pub fn is_shorted(&self) -> bool {
        self.source == self.drain
    }
}

/// An extracted net: an electrically connected region of the
/// conducting layers that does not cross a transistor channel.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Net {
    /// All user-defined names attached to this net (CIF `94` labels).
    pub names: Vec<String>,
    /// A representative location on the net.
    pub location: Option<Point>,
    /// The net's geometry (emptied unless geometry output is enabled).
    pub geometry: Vec<(Layer, Rect)>,
    /// Per-layer parasitic totals (union area/perimeter, cut area),
    /// accumulated by the extractor during the sweep.
    pub parasitics: NetParasitics,
}

impl Net {
    /// The net's primary (first) user name, if any.
    pub fn primary_name(&self) -> Option<&str> {
        self.names.first().map(String::as_str)
    }
}

/// A flat circuit: nets plus devices.
///
/// This is ACE's output artifact — it is produced once the scanline
/// reaches the bottom of the chip and every net merger is final.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Netlist {
    nets: Vec<Net>,
    devices: Vec<Device>,
    /// Title, usually the source CIF file name.
    pub name: String,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new() -> Self {
        Netlist::default()
    }

    /// Adds a fresh, unnamed net.
    pub fn add_net(&mut self) -> NetId {
        self.nets.push(Net::default());
        NetId(self.nets.len() as u32 - 1)
    }

    /// Adds a device.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if a terminal references a missing net.
    pub fn add_device(&mut self, device: Device) {
        debug_assert!((device.gate.0 as usize) < self.nets.len());
        debug_assert!((device.source.0 as usize) < self.nets.len());
        debug_assert!((device.drain.0 as usize) < self.nets.len());
        self.devices.push(device);
    }

    /// Attaches a user name to a net (duplicates are ignored).
    pub fn add_name(&mut self, id: NetId, name: impl Into<String>) {
        let name = name.into();
        let net = &mut self.nets[id.0 as usize];
        if !net.names.contains(&name) {
            net.names.push(name);
        }
    }

    /// Sets a net's representative location (first writer wins).
    pub fn set_location(&mut self, id: NetId, at: Point) {
        let net = &mut self.nets[id.0 as usize];
        if net.location.is_none() {
            net.location = Some(at);
        }
    }

    /// Records geometry on a net.
    pub fn add_geometry(&mut self, id: NetId, layer: Layer, rect: Rect) {
        self.nets[id.0 as usize].geometry.push((layer, rect));
    }

    /// Accumulates parasitic totals onto a net (summing with whatever
    /// is already there — partial sums from banded or hierarchical
    /// extraction merge through this).
    pub fn add_parasitics(&mut self, id: NetId, p: &NetParasitics) {
        self.nets[id.0 as usize].parasitics.merge(p);
    }

    /// A net by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.0 as usize]
    }

    /// All nets, in id order.
    pub fn nets(&self) -> impl ExactSizeIterator<Item = (NetId, &Net)> {
        self.nets
            .iter()
            .enumerate()
            .map(|(i, n)| (NetId(i as u32), n))
    }

    /// All devices.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// Number of devices.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Number of devices of each kind, as (enhancement, depletion,
    /// capacitor).
    pub fn device_census(&self) -> (usize, usize, usize) {
        let mut census = (0, 0, 0);
        for d in &self.devices {
            match d.kind {
                DeviceKind::Enhancement => census.0 += 1,
                DeviceKind::Depletion => census.1 += 1,
                DeviceKind::Capacitor => census.2 += 1,
            }
        }
        census
    }

    /// Finds the net carrying a user name.
    pub fn net_by_name(&self, name: &str) -> Option<NetId> {
        self.nets
            .iter()
            .position(|n| n.names.iter().any(|x| x == name))
            .map(|i| NetId(i as u32))
    }

    /// Map from every user name to its net.
    pub fn name_table(&self) -> BTreeMap<&str, NetId> {
        let mut table = BTreeMap::new();
        for (id, net) in self.nets() {
            for name in &net.names {
                table.insert(name.as_str(), id);
            }
        }
        table
    }

    /// Degree of each net: how many device terminals attach to it.
    pub fn net_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.nets.len()];
        for d in &self.devices {
            deg[d.gate.0 as usize] += 1;
            deg[d.source.0 as usize] += 1;
            deg[d.drain.0 as usize] += 1;
        }
        deg
    }

    /// Retains only nets that carry a device terminal, a name, or
    /// geometry, renumbering the rest away. Returns the old→new map.
    ///
    /// The extractor can create nets for isolated wiring (e.g. a
    /// floating metal strap); callers that only care about the
    /// circuit graph use this to drop them.
    pub fn prune_floating_nets(&mut self) -> Vec<Option<NetId>> {
        let deg = self.net_degrees();
        let mut remap: Vec<Option<NetId>> = vec![None; self.nets.len()];
        let mut kept = Vec::with_capacity(self.nets.len());
        for (i, net) in self.nets.drain(..).enumerate() {
            if deg[i] > 0 || !net.names.is_empty() || !net.geometry.is_empty() {
                remap[i] = Some(NetId(kept.len() as u32));
                kept.push(net);
            }
        }
        self.nets = kept;
        for d in &mut self.devices {
            d.gate = remap[d.gate.0 as usize].expect("device net pruned");
            d.source = remap[d.source.0 as usize].expect("device net pruned");
            d.drain = remap[d.drain.0 as usize].expect("device net pruned");
        }
        remap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inverter() -> Netlist {
        let mut nl = Netlist::new();
        let vdd = nl.add_net();
        let out = nl.add_net();
        let inp = nl.add_net();
        let gnd = nl.add_net();
        nl.add_name(vdd, "VDD");
        nl.add_name(out, "OUT");
        nl.add_name(inp, "INP");
        nl.add_name(gnd, "GND");
        nl.add_device(Device {
            kind: DeviceKind::Enhancement,
            gate: inp,
            source: out,
            drain: gnd,
            length: 400,
            width: 2800,
            location: Point::new(-800, -400),
            channel_geometry: vec![],
        });
        nl.add_device(Device {
            kind: DeviceKind::Depletion,
            gate: out,
            source: vdd,
            drain: out,
            length: 1400,
            width: 400,
            location: Point::new(-400, 2800),
            channel_geometry: vec![],
        });
        nl
    }

    #[test]
    fn build_and_census() {
        let nl = inverter();
        assert_eq!(nl.net_count(), 4);
        assert_eq!(nl.device_count(), 2);
        assert_eq!(nl.device_census(), (1, 1, 0));
    }

    #[test]
    fn names_and_lookup() {
        let mut nl = inverter();
        assert_eq!(nl.net_by_name("OUT"), Some(NetId(1)));
        assert_eq!(nl.net_by_name("missing"), None);
        // Duplicate names are ignored.
        nl.add_name(NetId(0), "VDD");
        assert_eq!(nl.net(NetId(0)).names, vec!["VDD"]);
        // Aliases work.
        nl.add_name(NetId(0), "POWER");
        assert_eq!(nl.net_by_name("POWER"), Some(NetId(0)));
        assert_eq!(nl.name_table().len(), 5);
    }

    #[test]
    fn location_first_writer_wins() {
        let mut nl = inverter();
        nl.set_location(NetId(0), Point::new(1, 1));
        nl.set_location(NetId(0), Point::new(9, 9));
        assert_eq!(nl.net(NetId(0)).location, Some(Point::new(1, 1)));
    }

    #[test]
    fn degrees() {
        let nl = inverter();
        // VDD: 1 (dep source); OUT: dep gate + dep drain + enh source = 3;
        // INP: 1; GND: 1.
        assert_eq!(nl.net_degrees(), vec![1, 3, 1, 1]);
    }

    #[test]
    fn device_helpers() {
        let nl = inverter();
        let dep = &nl.devices()[1];
        assert_eq!(dep.channel_area(), 1400 * 400);
        assert!(!dep.is_shorted());
    }

    #[test]
    fn dim_flags_degenerate_channels() {
        let nl = inverter();
        let enh = &nl.devices()[0];
        assert_eq!(
            enh.dim(),
            DeviceDim::Channel {
                length: 400,
                width: 2800
            }
        );
        for (length, width) in [(0, 400), (400, 0), (0, 0), (-1, 400)] {
            let d = Device {
                length,
                width,
                ..enh.clone()
            };
            assert_eq!(d.dim(), DeviceDim::Degenerate, "{length}x{width}");
        }
    }

    #[test]
    fn prune_floating() {
        let mut nl = inverter();
        let floater = nl.add_net(); // no names, no devices
        assert_eq!(nl.net_count(), 5);
        let remap = nl.prune_floating_nets();
        assert_eq!(nl.net_count(), 4);
        assert_eq!(remap[floater.0 as usize], None);
        assert_eq!(nl.device_count(), 2);
        assert_eq!(nl.net_by_name("GND"), Some(NetId(3)));
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in [
            DeviceKind::Enhancement,
            DeviceKind::Depletion,
            DeviceKind::Capacitor,
        ] {
            assert_eq!(DeviceKind::from_part_name(kind.part_name()), Some(kind));
        }
        assert_eq!(DeviceKind::from_part_name("pEnh"), None);
    }
}
