//! Per-net parasitic totals and the layer parameter table.
//!
//! The sweep accumulates raw per-net, per-layer **drawn area** and
//! **union perimeter** (plus contact-cut area) as it visits each
//! rectangle — see `ace_core`'s net table. This module holds the
//! output-side types: the raw totals ([`NetParasitics`]), the
//! per-layer electrical parameter table ([`ParasiticParams`]), and
//! the integer-exact conversions to capacitance and resistance
//! estimates.
//!
//! All arithmetic is integer (areas in centimicron², lengths in
//! centimicrons, capacitance in attofarads, resistance in
//! milliohms), so every backend produces byte-identical derived
//! values — the conformance harness depends on this.

use ace_geom::{Layer, Rect, LAMBDA};

/// Number of conducting layers tracked ([`Layer::CONDUCTING`]).
pub const CONDUCTING_COUNT: usize = 3;

/// Slot of a conducting layer in the parasitic arrays
/// (diffusion 0, poly 1, metal 2), or `None` for non-conducting
/// layers.
pub fn conducting_slot(layer: Layer) -> Option<usize> {
    match layer {
        Layer::Diffusion => Some(0),
        Layer::Poly => Some(1),
        Layer::Metal => Some(2),
        _ => None,
    }
}

/// Raw per-net parasitic totals, accumulated during extraction.
///
/// `area[i]`/`perimeter[i]` describe the **union** region of the
/// net's drawn geometry on conducting layer `i` (slots per
/// [`conducting_slot`]): overlapping rectangles are not
/// double-counted, and an edge shared by two abutting rectangles is
/// interior (not perimeter). `cut_area` is the area of the contact
/// cut layer intersected with the net's conducting region.
///
/// Units: area in centimicron², perimeter in centimicrons.
///
/// # Examples
///
/// ```
/// use ace_wirelist::NetParasitics;
/// use ace_geom::{Layer, Rect};
///
/// let mut p = NetParasitics::default();
/// p.add_rect(Layer::Metal, &Rect::new(0, 0, 1000, 250));
/// assert_eq!(p.area_of(Layer::Metal), 250_000);
/// assert_eq!(p.perimeter_of(Layer::Metal), 2500);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct NetParasitics {
    /// Union area per conducting layer, centimicron².
    pub area: [i64; CONDUCTING_COUNT],
    /// Union perimeter per conducting layer, centimicrons.
    pub perimeter: [i64; CONDUCTING_COUNT],
    /// Area of contact cuts over this net's conducting region,
    /// centimicron².
    pub cut_area: i64,
}

impl NetParasitics {
    /// True when every total is zero (net has no drawn geometry).
    pub fn is_zero(&self) -> bool {
        *self == NetParasitics::default()
    }

    /// Accumulates one drawn rectangle: full area plus full
    /// perimeter. Callers subtract shared edges via
    /// [`sub_edge`](Self::sub_edge) wherever two same-layer
    /// rectangles abut, keeping the totals equal to the union
    /// region's. Non-conducting layers are ignored.
    pub fn add_rect(&mut self, layer: Layer, rect: &Rect) {
        if let Some(slot) = conducting_slot(layer) {
            self.area[slot] += rect.area();
            self.perimeter[slot] += 2 * (rect.width() + rect.height());
        }
    }

    /// Removes a shared edge of length `len` from the layer's
    /// perimeter. When two same-layer regions with disjoint
    /// interiors are unioned along an edge of length `len`, the
    /// union's perimeter is the sum of the parts' minus `2 * len`
    /// (the edge was counted once by each part).
    pub fn sub_edge(&mut self, layer: Layer, len: i64) {
        if let Some(slot) = conducting_slot(layer) {
            self.perimeter[slot] -= 2 * len;
        }
    }

    /// Adds contact-cut area attributed to this net.
    pub fn add_cut_area(&mut self, area: i64) {
        self.cut_area += area;
    }

    /// Adds every total of `other` into `self` (merging two partial
    /// accumulations of the same net).
    pub fn merge(&mut self, other: &NetParasitics) {
        for i in 0..CONDUCTING_COUNT {
            self.area[i] += other.area[i];
            self.perimeter[i] += other.perimeter[i];
        }
        self.cut_area += other.cut_area;
    }

    /// Union area on `layer` (0 for non-conducting layers).
    pub fn area_of(&self, layer: Layer) -> i64 {
        conducting_slot(layer).map_or(0, |s| self.area[s])
    }

    /// Union perimeter on `layer` (0 for non-conducting layers).
    pub fn perimeter_of(&self, layer: Layer) -> i64 {
        conducting_slot(layer).map_or(0, |s| self.perimeter[s])
    }
}

/// Electrical parameters of one conducting layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerParams {
    /// Area (parallel-plate) capacitance to substrate, aF per λ².
    pub area_cap: i64,
    /// Fringe capacitance, aF per λ of perimeter.
    pub fringe_cap: i64,
    /// Sheet resistance, mΩ per square.
    pub sheet_res: i64,
}

/// The per-layer parameter table converting raw geometry totals to
/// electrical estimates.
///
/// Values are representative of the paper-era (1983) NMOS process:
/// λ = 2.5 µm, diffusion ≈ 10 Ω/□, poly ≈ 30 Ω/□, metal ≈ 0.05 Ω/□,
/// gate oxide ≈ 400 aF/λ².
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParasiticParams {
    /// Conducting-layer parameters, indexed by [`conducting_slot`].
    pub layers: [LayerParams; CONDUCTING_COUNT],
    /// Gate-oxide capacitance, aF per λ² of channel area (loads the
    /// driving net in the Elmore model).
    pub gate_cap: i64,
    /// Effective channel sheet resistance of a turned-on device,
    /// mΩ per square (used for the driver term of a stage delay).
    pub channel_sheet_res: i64,
    /// Extra capacitance at contacts, aF per λ² of cut area.
    pub cut_cap: i64,
}

impl ParasiticParams {
    /// The default NMOS parameter table.
    pub fn nmos() -> Self {
        ParasiticParams {
            layers: [
                // Diffusion: heavy junction capacitance, 10 Ω/□.
                LayerParams {
                    area_cap: 100,
                    fringe_cap: 100,
                    sheet_res: 10_000,
                },
                // Poly: 40 aF/λ² over field oxide, 30 Ω/□.
                LayerParams {
                    area_cap: 40,
                    fringe_cap: 50,
                    sheet_res: 30_000,
                },
                // Metal: 30 aF/λ², 0.05 Ω/□.
                LayerParams {
                    area_cap: 30,
                    fringe_cap: 40,
                    sheet_res: 50,
                },
            ],
            gate_cap: 400,
            channel_sheet_res: 10_000_000, // ~10 kΩ/□ on-resistance
            cut_cap: 20,
        }
    }
}

impl Default for ParasiticParams {
    fn default() -> Self {
        ParasiticParams::nmos()
    }
}

const LAMBDA2: i128 = (LAMBDA as i128) * (LAMBDA as i128);

/// Integer square root (floor), for the equivalent-rectangle solve.
fn isqrt(v: i128) -> i128 {
    if v <= 0 {
        return 0;
    }
    let mut x = v;
    let mut y = (x + 1) / 2;
    while y < x {
        x = y;
        y = (x + v / x) / 2;
    }
    x
}

/// Total wire capacitance to ground of a net, in attofarads.
///
/// Sums, per conducting layer, `area · area_cap / λ²` plus
/// `perimeter · fringe_cap / λ`, plus `cut_area · cut_cap / λ²`.
/// Pure integer arithmetic: identical raw totals give identical
/// capacitance on every backend.
pub fn net_capacitance_af(p: &NetParasitics, params: &ParasiticParams) -> i64 {
    let mut total: i128 = 0;
    for (slot, lp) in params.layers.iter().enumerate() {
        total += (p.area[slot] as i128) * (lp.area_cap as i128) / LAMBDA2;
        total += (p.perimeter[slot] as i128) * (lp.fringe_cap as i128) / (LAMBDA as i128);
    }
    total += (p.cut_area as i128) * (params.cut_cap as i128) / LAMBDA2;
    total.clamp(i64::MIN as i128, i64::MAX as i128) as i64
}

/// Segment-resistance estimate of a net, in milliohms.
///
/// Per layer, the union region is replaced by the *equivalent
/// rectangle* with the same area `a` and semi-perimeter `s = p/2`
/// (solving `x² − s·x + a = 0` with an integer square root), and the
/// layer contributes `sheet_res · L / W` for that rectangle. The
/// per-layer terms are summed: a worst-case end-to-end series
/// estimate for a net running through several layers.
pub fn net_resistance_mohm(p: &NetParasitics, params: &ParasiticParams) -> i64 {
    let mut total: i128 = 0;
    for (slot, lp) in params.layers.iter().enumerate() {
        let a = p.area[slot] as i128;
        if a <= 0 {
            continue;
        }
        total += (lp.sheet_res as i128) * squares_milli(a, p.perimeter[slot] as i128) / 1000;
    }
    total.clamp(0, i64::MAX as i128) as i64
}

/// `L/W` of the equivalent rectangle with area `a` and perimeter
/// `p`, in milli-squares (1000 = one square). Degenerate inputs
/// (zero width) yield 0.
fn squares_milli(a: i128, p: i128) -> i128 {
    let s = p / 2; // L + W for a true rectangle
    let disc = (s * s - 4 * a).max(0);
    let l = (s + isqrt(disc)) / 2;
    let w = s - l;
    if w <= 0 {
        return 0;
    }
    l * 1000 / w
}

/// On-resistance of a device channel (`length`/`width` in
/// centimicrons), in milliohms.
pub fn device_on_resistance_mohm(length: i64, width: i64, params: &ParasiticParams) -> i64 {
    if width <= 0 {
        return 0;
    }
    let r = (params.channel_sheet_res as i128) * (length as i128) / (width as i128);
    r.clamp(0, i64::MAX as i128) as i64
}

/// Gate capacitance of a device channel (area in centimicron²), in
/// attofarads.
pub fn device_gate_cap_af(length: i64, width: i64, params: &ParasiticParams) -> i64 {
    let area = (length as i128) * (width as i128);
    (area * (params.gate_cap as i128) / LAMBDA2).clamp(0, i64::MAX as i128) as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_rect_ignores_non_conducting_layers() {
        let mut p = NetParasitics::default();
        p.add_rect(Layer::Cut, &Rect::new(0, 0, 100, 100));
        p.add_rect(Layer::Implant, &Rect::new(0, 0, 100, 100));
        assert!(p.is_zero());
    }

    #[test]
    fn abutting_rects_with_sub_edge_match_the_union() {
        // Two 4λ × 1λ bars abutting along a 4λ edge form one
        // 4λ × 2λ rectangle.
        let mut p = NetParasitics::default();
        p.add_rect(Layer::Poly, &Rect::new(0, 0, 1000, 250));
        p.add_rect(Layer::Poly, &Rect::new(0, 250, 1000, 500));
        p.sub_edge(Layer::Poly, 1000);
        let mut whole = NetParasitics::default();
        whole.add_rect(Layer::Poly, &Rect::new(0, 0, 1000, 500));
        assert_eq!(p, whole);
    }

    #[test]
    fn merge_sums_all_fields() {
        let mut a = NetParasitics::default();
        a.add_rect(Layer::Metal, &Rect::new(0, 0, 500, 250));
        a.add_cut_area(100);
        let mut b = NetParasitics::default();
        b.add_rect(Layer::Diffusion, &Rect::new(0, 0, 250, 250));
        b.add_cut_area(50);
        a.merge(&b);
        assert_eq!(a.area_of(Layer::Metal), 125_000);
        assert_eq!(a.area_of(Layer::Diffusion), 62_500);
        assert_eq!(a.cut_area, 150);
    }

    #[test]
    fn capacitance_of_one_square_lambda() {
        // 1λ × 1λ of metal: 30 aF area + 4λ of perimeter · 40 aF/λ.
        let mut p = NetParasitics::default();
        p.add_rect(Layer::Metal, &Rect::new(0, 0, LAMBDA, LAMBDA));
        let c = net_capacitance_af(&p, &ParasiticParams::nmos());
        assert_eq!(c, 30 + 4 * 40);
    }

    #[test]
    fn resistance_of_a_long_poly_wire() {
        // 10λ × 1λ poly: 10 squares · 30 Ω/□ = 300 Ω.
        let mut p = NetParasitics::default();
        p.add_rect(Layer::Poly, &Rect::new(0, 0, 10 * LAMBDA, LAMBDA));
        let r = net_resistance_mohm(&p, &ParasiticParams::nmos());
        assert_eq!(r, 300_000);
    }

    #[test]
    fn isqrt_is_exact_on_squares() {
        for v in [0i128, 1, 4, 9, 144, 62_500, 1 << 40] {
            let r = isqrt(v);
            assert!(r * r <= v && (r + 1) * (r + 1) > v, "isqrt({v}) = {r}");
        }
    }

    #[test]
    fn device_helpers_are_integer_stable() {
        let params = ParasiticParams::nmos();
        // 2λ × 2λ channel: 4λ² · 400 aF = 1600 aF; 1 square of
        // channel sheet.
        assert_eq!(device_gate_cap_af(500, 500, &params), 1600);
        assert_eq!(device_on_resistance_mohm(500, 500, &params), 10_000_000);
        assert_eq!(device_on_resistance_mohm(500, 0, &params), 0);
    }
}
