use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use ace_geom::{Layer, Point, Rect};

use crate::model::{Device, DeviceKind, NetId, Netlist};
use crate::parasitics::NetParasitics;

/// Error produced while reading wirelist text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseWirelistError {
    message: String,
}

impl ParseWirelistError {
    fn new(message: impl Into<String>) -> Self {
        ParseWirelistError {
            message: message.into(),
        }
    }

    /// Description of the problem.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ParseWirelistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wirelist parse error: {}", self.message)
    }
}

impl Error for ParseWirelistError {}

/// Minimal s-expression value.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Sexp {
    Atom(String),
    Str(String),
    List(Vec<Sexp>),
}

impl Sexp {
    fn atom(&self) -> Option<&str> {
        match self {
            Sexp::Atom(s) => Some(s),
            _ => None,
        }
    }

    fn list(&self) -> Option<&[Sexp]> {
        match self {
            Sexp::List(items) => Some(items),
            _ => None,
        }
    }

    fn int(&self) -> Option<i64> {
        self.atom()?.parse().ok()
    }

    /// For a list `(Head …)`, the head atom.
    fn head(&self) -> Option<&str> {
        self.list()?.first()?.atom()
    }

    /// Child lists with the given head.
    fn children<'a>(&'a self, head: &'a str) -> impl Iterator<Item = &'a [Sexp]> + 'a {
        self.list()
            .unwrap_or(&[])
            .iter()
            .filter_map(move |c| match c.head() {
                Some(h) if h == head => c.list(),
                _ => None,
            })
    }
}

fn tokenize(src: &str) -> Result<Vec<String>, ParseWirelistError> {
    let mut tokens = Vec::new();
    let mut chars = src.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            '(' | ')' => {
                tokens.push(c.to_string());
                chars.next();
            }
            '"' => {
                chars.next();
                let mut s = String::from("\"");
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some(ch) => s.push(ch),
                        None => return Err(ParseWirelistError::new("unterminated string")),
                    }
                }
                tokens.push(s);
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            _ => {
                let mut s = String::new();
                while let Some(&ch) = chars.peek() {
                    if ch.is_whitespace() || ch == '(' || ch == ')' || ch == '"' {
                        break;
                    }
                    s.push(ch);
                    chars.next();
                }
                tokens.push(s);
            }
        }
    }
    Ok(tokens)
}

fn parse_sexps(tokens: &[String]) -> Result<Vec<Sexp>, ParseWirelistError> {
    let mut stack: Vec<Vec<Sexp>> = vec![Vec::new()];
    for t in tokens {
        match t.as_str() {
            "(" => stack.push(Vec::new()),
            ")" => {
                let done = stack
                    .pop()
                    .ok_or_else(|| ParseWirelistError::new("unbalanced ')'"))?;
                stack
                    .last_mut()
                    .ok_or_else(|| ParseWirelistError::new("unbalanced ')'"))?
                    .push(Sexp::List(done));
            }
            s if s.starts_with('"') => {
                stack
                    .last_mut()
                    .expect("stack non-empty")
                    .push(Sexp::Str(s[1..].to_string()));
            }
            s => {
                stack
                    .last_mut()
                    .expect("stack non-empty")
                    .push(Sexp::Atom(s.to_string()));
            }
        }
    }
    if stack.len() != 1 {
        return Err(ParseWirelistError::new("unbalanced '('"));
    }
    Ok(stack.pop().expect("single frame"))
}

/// Parses flat wirelist text (the output of
/// [`crate::write_wirelist`]) back into a [`Netlist`].
///
/// Net ids are renumbered densely in order of first appearance, so
/// `parse(write(nl))` yields a netlist isomorphic to `nl` (equal, for
/// netlists produced by the extractor, whose ids are already dense).
///
/// # Errors
///
/// Returns an error for malformed s-expressions or missing required
/// fields.
///
/// # Examples
///
/// ```
/// use ace_wirelist::{parse_wirelist, write_wirelist, Netlist, WirelistOptions};
///
/// let mut nl = Netlist::new();
/// let n = nl.add_net();
/// nl.add_name(n, "CLK");
/// let text = write_wirelist(&nl, WirelistOptions::new());
/// let back = parse_wirelist(&text)?;
/// assert_eq!(back.net_by_name("CLK"), Some(n));
/// # Ok::<(), ace_wirelist::ParseWirelistError>(())
/// ```
pub fn parse_wirelist(src: &str) -> Result<Netlist, ParseWirelistError> {
    let sexps = parse_sexps(&tokenize(src)?)?;
    let root = sexps
        .iter()
        .find(|s| s.head() == Some("DefPart"))
        .ok_or_else(|| ParseWirelistError::new("no top-level DefPart"))?;
    let items = root.list().expect("DefPart is a list");

    let mut nl = Netlist::new();
    if let Some(Sexp::Str(name)) = items.get(1) {
        nl.name = name.clone();
    }

    let mut ids: HashMap<String, NetId> = HashMap::new();
    let mut intern = |nl: &mut Netlist, token: &str| -> NetId {
        *ids.entry(token.to_string()).or_insert_with(|| nl.add_net())
    };

    for item in items.iter().skip(1) {
        match item.head() {
            Some("Part") => {
                let parts = item.list().expect("list");
                let kind_name = parts
                    .get(1)
                    .and_then(Sexp::atom)
                    .ok_or_else(|| ParseWirelistError::new("Part without kind"))?;
                let kind = DeviceKind::from_part_name(kind_name).ok_or_else(|| {
                    ParseWirelistError::new(format!("unknown device kind '{kind_name}'"))
                })?;
                let mut gate = None;
                let mut source = None;
                let mut drain = None;
                for t in item.children("T") {
                    let role = t.get(1).and_then(Sexp::atom).unwrap_or("");
                    let net = t
                        .get(2)
                        .and_then(Sexp::atom)
                        .ok_or_else(|| ParseWirelistError::new("T without net"))?;
                    let id = intern(&mut nl, net);
                    match role {
                        "Gate" | "G" => gate = Some(id),
                        "Source" | "S" => source = Some(id),
                        "Drain" | "D" => drain = Some(id),
                        other => {
                            return Err(ParseWirelistError::new(format!(
                                "unknown terminal role '{other}'"
                            )))
                        }
                    }
                }
                let location = item
                    .children("Location")
                    .next()
                    .and_then(|l| Some(Point::new(l.get(1)?.int()?, l.get(2)?.int()?)))
                    .unwrap_or(Point::ORIGIN);
                let channel = item
                    .children("Channel")
                    .next()
                    .ok_or_else(|| ParseWirelistError::new("Part without Channel"))?;
                let field = |head: &str| -> Option<i64> {
                    channel.iter().find_map(|c| {
                        let l = c.list()?;
                        if l.first()?.atom()? == head {
                            l.get(1)?.int()
                        } else {
                            None
                        }
                    })
                };
                let length = field("Length")
                    .ok_or_else(|| ParseWirelistError::new("Channel without Length"))?;
                let width = field("Width")
                    .ok_or_else(|| ParseWirelistError::new("Channel without Width"))?;
                let channel_geometry = channel
                    .iter()
                    .find_map(|c| {
                        let l = c.list()?;
                        if l.first()?.atom()? == "CIF" {
                            if let Some(Sexp::Str(text)) = l.get(1) {
                                return Some(parse_geometry_cif(text));
                            }
                        }
                        None
                    })
                    .transpose()?
                    .map(|g| g.into_iter().map(|(_, r)| r).collect())
                    .unwrap_or_default();
                nl.add_device(Device {
                    kind,
                    gate: gate.ok_or_else(|| ParseWirelistError::new("Part without gate"))?,
                    source: source.ok_or_else(|| ParseWirelistError::new("Part without source"))?,
                    drain: drain.ok_or_else(|| ParseWirelistError::new("Part without drain"))?,
                    length,
                    width,
                    location,
                    channel_geometry,
                });
            }
            Some("Net") => {
                let parts = item.list().expect("list");
                let id_token = parts
                    .get(1)
                    .and_then(Sexp::atom)
                    .ok_or_else(|| ParseWirelistError::new("Net without id"))?;
                let id = intern(&mut nl, id_token);
                for p in parts.iter().skip(2) {
                    match p {
                        Sexp::Atom(name) => nl.add_name(id, name.clone()),
                        Sexp::List(_) => match p.head() {
                            Some("Location") => {
                                let l = p.list().expect("list");
                                if let (Some(x), Some(y)) =
                                    (l.get(1).and_then(Sexp::int), l.get(2).and_then(Sexp::int))
                                {
                                    nl.set_location(id, Point::new(x, y));
                                }
                            }
                            Some("CIF") => {
                                if let Some(Sexp::Str(text)) = p.list().expect("list").get(1) {
                                    for (layer, r) in parse_geometry_cif(text)? {
                                        nl.add_geometry(id, layer, r);
                                    }
                                }
                            }
                            Some("Parasitics") => {
                                nl.add_parasitics(id, &parse_parasitics(p)?);
                            }
                            _ => {}
                        },
                        Sexp::Str(_) => {}
                    }
                }
            }
            Some("Local") => {
                // Ensure purely-local nets exist even if otherwise
                // unreferenced.
                for p in item.list().expect("list").iter().skip(1) {
                    if let Some(tok) = p.atom() {
                        intern(&mut nl, tok);
                    }
                }
            }
            _ => {}
        }
    }
    Ok(nl)
}

/// Parses a `(Parasitics (Area d p m) (Perimeter d p m) (CutArea c)
/// …)` section. The derived `(Cap …)`/`(Res …)` entries are ignored:
/// they are recomputable from the raw totals.
fn parse_parasitics(sexp: &Sexp) -> Result<NetParasitics, ParseWirelistError> {
    let mut p = NetParasitics::default();
    let triple = |items: &[Sexp]| -> Result<[i64; 3], ParseWirelistError> {
        let mut out = [0i64; 3];
        for (slot, item) in out.iter_mut().zip(items.iter().skip(1)) {
            *slot = item
                .int()
                .ok_or_else(|| ParseWirelistError::new("bad parasitic total"))?;
        }
        Ok(out)
    };
    for items in sexp.children("Area") {
        p.area = triple(items)?;
    }
    for items in sexp.children("Perimeter") {
        p.perimeter = triple(items)?;
    }
    for items in sexp.children("CutArea") {
        p.cut_area = items
            .get(1)
            .and_then(Sexp::int)
            .ok_or_else(|| ParseWirelistError::new("bad cut area"))?;
    }
    Ok(p)
}

/// Parses the writer's restricted geometry CIF dialect:
/// `L <layer>; B L<len> W<wid> C<x> <y>; …`. The pseudo-layer `NX`
/// (channel geometry) maps to [`Layer::Poly`]'s absence — it is
/// returned as diffusion for bookkeeping and ignored by callers that
/// only need rectangles.
fn parse_geometry_cif(text: &str) -> Result<Vec<(Layer, Rect)>, ParseWirelistError> {
    let mut out = Vec::new();
    let mut layer = Layer::Diffusion;
    for cmd in text.split(';') {
        let cmd = cmd.trim();
        if cmd.is_empty() {
            continue;
        }
        let fields: Vec<&str> = cmd.split_whitespace().collect();
        match fields[0] {
            "L" => {
                let name = fields
                    .get(1)
                    .ok_or_else(|| ParseWirelistError::new("L without layer"))?;
                layer = if *name == "NX" {
                    Layer::Diffusion
                } else {
                    Layer::from_cif_name(name)
                        .ok_or_else(|| ParseWirelistError::new(format!("unknown layer '{name}'")))?
                };
            }
            "B" => {
                let parse_tag = |tag: &str, s: &str| -> Result<i64, ParseWirelistError> {
                    s.strip_prefix(tag)
                        .unwrap_or(s)
                        .parse()
                        .map_err(|_| ParseWirelistError::new(format!("bad number '{s}'")))
                };
                if fields.len() < 5 {
                    return Err(ParseWirelistError::new("short B command"));
                }
                let l = parse_tag("L", fields[1])?;
                let w = parse_tag("W", fields[2])?;
                let x = parse_tag("C", fields[3])?;
                let y: i64 = fields[4]
                    .parse()
                    .map_err(|_| ParseWirelistError::new("bad y coordinate"))?;
                out.push((layer, Rect::from_center_size(x, y, l, w)));
            }
            other => {
                return Err(ParseWirelistError::new(format!(
                    "unknown geometry command '{other}'"
                )))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::{write_wirelist, WirelistOptions};

    fn sample() -> Netlist {
        let mut nl = Netlist::new();
        let vdd = nl.add_net();
        let out = nl.add_net();
        let inp = nl.add_net();
        let gnd = nl.add_net();
        nl.add_name(vdd, "VDD");
        nl.add_name(gnd, "GND");
        nl.set_location(vdd, Point::new(-2600, 3800));
        nl.add_geometry(vdd, Layer::Metal, Rect::new(-2600, 3000, 2200, 3800));
        nl.add_device(Device {
            kind: DeviceKind::Enhancement,
            gate: inp,
            source: out,
            drain: gnd,
            length: 400,
            width: 2800,
            location: Point::new(-800, -400),
            channel_geometry: vec![Rect::new(-800, -2000, -400, -800)],
        });
        nl.add_device(Device {
            kind: DeviceKind::Depletion,
            gate: out,
            source: vdd,
            drain: out,
            length: 1400,
            width: 400,
            location: Point::new(-400, 2800),
            channel_geometry: vec![],
        });
        nl.name = "inverter.cif".into();
        nl
    }

    #[test]
    fn round_trip_without_geometry() {
        let nl = sample();
        let text = write_wirelist(&nl, WirelistOptions::new());
        let back = parse_wirelist(&text).unwrap();
        assert_eq!(back.name, "inverter.cif");
        assert_eq!(back.device_count(), 2);
        assert_eq!(back.net_count(), 4);
        assert_eq!(back.device_census(), (1, 1, 0));
        let d = &back.devices()[0];
        assert_eq!(d.length, 400);
        assert_eq!(d.width, 2800);
        assert_eq!(d.location, Point::new(-800, -400));
        assert_eq!(
            back.net_by_name("VDD").map(|n| back.net(n).location),
            Some(Some(Point::new(-2600, 3800)))
        );
    }

    #[test]
    fn round_trip_with_geometry() {
        let nl = sample();
        let text = write_wirelist(&nl, WirelistOptions::new().with_geometry());
        let back = parse_wirelist(&text).unwrap();
        let vdd = back.net_by_name("VDD").unwrap();
        assert_eq!(
            back.net(vdd).geometry,
            vec![(Layer::Metal, Rect::new(-2600, 3000, 2200, 3800))]
        );
        assert_eq!(
            back.devices()[0].channel_geometry,
            vec![Rect::new(-800, -2000, -400, -800)]
        );
    }

    #[test]
    fn terminals_map_to_the_right_roles() {
        let nl = sample();
        let back = parse_wirelist(&write_wirelist(&nl, WirelistOptions::new())).unwrap();
        let enh = &back.devices()[0];
        let orig = &nl.devices()[0];
        // Ids are dense first-appearance; re-derive by names where
        // possible.
        assert_eq!(
            back.net(enh.drain).names,
            nl.net(orig.drain).names // GND
        );
    }

    #[test]
    fn round_trip_with_parasitics() {
        let mut nl = sample();
        let vdd = nl.net_by_name("VDD").unwrap();
        let mut p = NetParasitics::default();
        p.add_rect(Layer::Metal, &Rect::new(-2600, 3000, 2200, 3800));
        p.add_rect(Layer::Poly, &Rect::new(0, 0, 500, 250));
        p.add_cut_area(62500);
        nl.add_parasitics(vdd, &p);
        let text = write_wirelist(&nl, WirelistOptions::new().with_parasitics());
        assert!(text.contains("(Parasitics (Area"));
        let back = parse_wirelist(&text).unwrap();
        let vdd2 = back.net_by_name("VDD").unwrap();
        assert_eq!(back.net(vdd2).parasitics, p);
        // Nets without totals carry no section and stay zero.
        let gnd = back.net_by_name("GND").unwrap();
        assert!(back.net(gnd).parasitics.is_zero());
    }

    #[test]
    fn parasitics_suppressed_by_default() {
        let mut nl = sample();
        let vdd = nl.net_by_name("VDD").unwrap();
        let mut p = NetParasitics::default();
        p.add_rect(Layer::Metal, &Rect::new(0, 0, 1000, 1000));
        nl.add_parasitics(vdd, &p);
        let text = write_wirelist(&nl, WirelistOptions::new());
        assert!(!text.contains("Parasitics"));
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(parse_wirelist("(((").is_err());
        assert!(parse_wirelist(")").is_err());
        assert!(parse_wirelist("(Foo)").is_err()); // no DefPart
        assert!(parse_wirelist("(DefPart \"x\" (Part nEnh))").is_err()); // no channel
        assert!(
            parse_wirelist("(DefPart \"x\" (Part pFET (Channel (Length 1) (Width 1))))").is_err()
        ); // unknown kind
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(parse_wirelist("(DefPart \"oops").is_err());
    }

    #[test]
    fn empty_netlist_round_trips() {
        let mut nl = Netlist::new();
        nl.name = "empty".into();
        let back = parse_wirelist(&write_wirelist(&nl, WirelistOptions::new())).unwrap();
        assert_eq!(back.device_count(), 0);
        assert_eq!(back.net_count(), 0);
    }
}
