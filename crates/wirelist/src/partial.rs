//! Partial transistors: channel fragments cut by a window or band
//! boundary, merged and finalized by the stitching passes.
//!
//! Both HEXT's window composition (`ace-hext`) and the band-parallel
//! extractor (`ace-core`'s `parallel` module) split transistors whose
//! channel crosses a boundary and later reassemble them from these
//! records, so the accumulation and finalization rules live here, next
//! to the [`Device`] model they produce.

use ace_geom::{Coord, Point, Rect};

use crate::model::{Device, DeviceKind, NetId};

/// A transistor whose channel touches a window or band boundary; its
/// final form "is determined by the contents of the windows adjacent
/// to the partial transistor" (HEXT §3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartialDevice {
    /// Channel area inside this window.
    pub area: i64,
    /// Channel bounding box (window-local).
    pub bbox: Rect,
    /// `true` if implant covers the channel.
    pub depletion: bool,
    /// Gate net (local net id).
    pub gate: u32,
    /// Diffusion terminal contacts `(local net, edge length)`.
    pub terminals: Vec<(u32, Coord)>,
}

impl PartialDevice {
    /// Finalizes the (merged) partial transistor with the same rules
    /// as the flat extractor: width is the mean of the two largest
    /// distinct-net terminal contacts, length is area / width, and a
    /// channel with fewer than two distinct terminals is a capacitor.
    pub fn finalize(&self) -> Device {
        let mut terminals = self.terminals.clone();
        terminals.sort_unstable_by_key(|&(net, _)| net);
        terminals.dedup_by(|a, b| {
            if a.0 == b.0 {
                b.1 += a.1;
                true
            } else {
                false
            }
        });
        terminals.sort_unstable_by_key(|&(_, len)| -len);

        let gate = NetId(self.gate);
        let (kind, source, drain, width) = match terminals.len() {
            0 => {
                let side = integer_sqrt(self.area).max(1);
                (DeviceKind::Capacitor, gate, gate, side)
            }
            1 => {
                let n = NetId(terminals[0].0);
                (DeviceKind::Capacitor, n, n, terminals[0].1.max(0))
            }
            _ => {
                let s = NetId(terminals[0].0);
                let d = NetId(terminals[1].0);
                let kind = if self.depletion {
                    DeviceKind::Depletion
                } else {
                    DeviceKind::Enhancement
                };
                (kind, s, d, ((terminals[0].1 + terminals[1].1) / 2).max(0))
            }
        };
        // Zero-length source/drain edges would make `area / width`
        // blow up; emit the 0×0 marker [`crate::DeviceDim::Degenerate`]
        // instead.
        let length = if width > 0 {
            (self.area / width).max(1)
        } else {
            0
        };
        Device {
            kind,
            gate,
            source,
            drain,
            length,
            width,
            location: Point::new(self.bbox.x_min, self.bbox.y_max),
            channel_geometry: Vec::new(),
        }
    }

    /// Merges another partial transistor's contribution into this one
    /// (the two channel fragments are the same device).
    pub fn absorb(&mut self, other: &PartialDevice) {
        self.area += other.area;
        self.bbox = self.bbox.bounding_union(&other.bbox);
        self.depletion |= other.depletion;
        self.terminals.extend_from_slice(&other.terminals);
        // Gate nets are unified by the caller's equivalences; keep
        // ours.
    }
}

fn integer_sqrt(v: i64) -> i64 {
    if v <= 0 {
        return 0;
    }
    let mut x = (v as f64).sqrt() as i64;
    while (x + 1) * (x + 1) <= v {
        x += 1;
    }
    while x * x > v {
        x -= 1;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finalize_two_terminals() {
        let p = PartialDevice {
            area: 400 * 400,
            bbox: Rect::new(0, 0, 400, 400),
            depletion: false,
            gate: 0,
            terminals: vec![(1, 400), (2, 400)],
        };
        let d = p.finalize();
        assert_eq!(d.kind, DeviceKind::Enhancement);
        assert_eq!((d.length, d.width), (400, 400));
        assert_eq!(d.location, Point::new(0, 400));
    }

    #[test]
    fn finalize_dedupes_terminals_by_net() {
        let p = PartialDevice {
            area: 800,
            bbox: Rect::new(0, 0, 40, 20),
            depletion: true,
            gate: 0,
            terminals: vec![(1, 10), (1, 10), (2, 20)],
        };
        let d = p.finalize();
        assert_eq!(d.kind, DeviceKind::Depletion);
        assert_eq!(d.width, (20 + 20) / 2);
    }

    #[test]
    fn finalize_single_terminal_is_capacitor() {
        let p = PartialDevice {
            area: 100,
            bbox: Rect::new(0, 0, 10, 10),
            depletion: false,
            gate: 3,
            terminals: vec![(7, 10)],
        };
        let d = p.finalize();
        assert_eq!(d.kind, DeviceKind::Capacitor);
        assert_eq!(d.source, d.drain);
        assert_eq!(d.source, NetId(7));
    }

    #[test]
    fn finalize_zero_terminal_capacitor_uses_sqrt_width() {
        let p = PartialDevice {
            area: 10_000,
            bbox: Rect::new(0, 0, 100, 100),
            depletion: false,
            gate: 5,
            terminals: vec![],
        };
        let d = p.finalize();
        assert_eq!(d.kind, DeviceKind::Capacitor);
        assert_eq!(d.width, 100);
        assert_eq!(d.length, 100);
        assert_eq!(d.gate, NetId(5));
    }

    #[test]
    fn finalize_zero_length_edges_is_degenerate_not_infinite() {
        use crate::model::DeviceDim;
        // A seam artifact: two terminal contacts that both collapsed
        // to zero length. The old `.max(1)` clamp turned this into a
        // width-1 device with length == area (an ∞-style L); now the
        // division is skipped and the dimension reads as degenerate.
        let p = PartialDevice {
            area: 400 * 400,
            bbox: Rect::new(0, 0, 400, 400),
            depletion: false,
            gate: 0,
            terminals: vec![(1, 0), (2, 0)],
        };
        let d = p.finalize();
        assert_eq!((d.length, d.width), (0, 0));
        assert_eq!(d.dim(), DeviceDim::Degenerate);

        // Same for a single zero-length terminal (capacitor path).
        let p = PartialDevice {
            terminals: vec![(1, 0)],
            ..p
        };
        assert_eq!(p.finalize().dim(), DeviceDim::Degenerate);

        // A healthy device still reports its channel.
        let p = PartialDevice {
            terminals: vec![(1, 400), (2, 400)],
            ..p
        };
        assert_eq!(
            p.finalize().dim(),
            DeviceDim::Channel {
                length: 400,
                width: 400
            }
        );
    }

    #[test]
    fn absorb_accumulates() {
        let mut a = PartialDevice {
            area: 100,
            bbox: Rect::new(0, 0, 10, 10),
            depletion: false,
            gate: 0,
            terminals: vec![(1, 5)],
        };
        let b = PartialDevice {
            area: 200,
            bbox: Rect::new(10, 0, 30, 10),
            depletion: true,
            gate: 9,
            terminals: vec![(2, 5)],
        };
        a.absorb(&b);
        assert_eq!(a.area, 300);
        assert_eq!(a.bbox, Rect::new(0, 0, 30, 10));
        assert!(a.depletion);
        assert_eq!(a.terminals.len(), 2);
        assert_eq!(a.gate, 0); // caller handles gate equivalence
    }
}
