//! A switch-level logic simulator over extracted netlists.
//!
//! "The wirelist can be fed to other CAD tools to verify the
//! correctness of the circuit. Logic simulators help validate the
//! logical correctness" (ACE paper §1). This module is that consumer:
//! a small ratioed-NMOS switch-level simulator in the style of
//! Bryant's MOSSIM, operating directly on the extractor's output.
//!
//! # Model
//!
//! Nets carry [`Logic`] values (0 / 1 / X) at one of three strengths:
//! *driven* (a rail reached through enhancement channels), *resistive*
//! (VDD through a depletion load — NMOS logic is ratioed, so a driven
//! 0 overpowers a resistive 1), and *charged* (an isolated net holds
//! its previous value). An enhancement channel conducts when its gate
//! is 1, blocks at 0, and conducts with unknown output when the gate
//! is X; depletion channels always conduct at resistive strength.
//! Evaluation relaxes to a fixpoint; nets still changing after the
//! iteration bound (oscillators) are forced to X.
//!
//! # Examples
//!
//! ```
//! use ace_wirelist::sim::{Logic, Simulator};
//! use ace_wirelist::{Device, DeviceKind, Netlist};
//! use ace_geom::Point;
//!
//! // An NMOS inverter: depletion load + enhancement pull-down.
//! let mut nl = Netlist::new();
//! let vdd = nl.add_net();
//! let gnd = nl.add_net();
//! let inp = nl.add_net();
//! let out = nl.add_net();
//! nl.add_name(vdd, "VDD");
//! nl.add_name(gnd, "GND");
//! let t = |kind, gate, source, drain| Device {
//!     kind, gate, source, drain,
//!     length: 2, width: 2,
//!     location: Point::ORIGIN, channel_geometry: vec![],
//! };
//! nl.add_device(t(DeviceKind::Depletion, out, vdd, out));
//! nl.add_device(t(DeviceKind::Enhancement, inp, out, gnd));
//!
//! let mut sim = Simulator::new(&nl)?;
//! sim.set_input(inp, Logic::Zero);
//! sim.settle();
//! assert_eq!(sim.value(out), Logic::One);
//! # Ok::<(), ace_wirelist::sim::BuildSimError>(())
//! ```

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::check::CheckOptions;
use crate::model::{DeviceKind, NetId, Netlist};

/// A ternary logic value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Logic {
    /// Logical 0.
    Zero,
    /// Logical 1.
    One,
    /// Unknown / uninitialized.
    #[default]
    X,
}

impl Logic {
    fn invert_unknown(self) -> Logic {
        Logic::X
    }
}

impl fmt::Display for Logic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Logic::Zero => "0",
            Logic::One => "1",
            Logic::X => "X",
        })
    }
}

/// Signal strength, ordered weakest to strongest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Strength {
    Charged = 0,
    Resistive = 1,
    Driven = 2,
}

/// Error constructing a [`Simulator`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildSimError {
    missing: &'static str,
}

impl fmt::Display for BuildSimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cannot simulate: no net named like {} (rails are identified by name)",
            self.missing
        )
    }
}

impl Error for BuildSimError {}

/// A switch-level simulator bound to one netlist.
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    netlist: &'a Netlist,
    vdd: NetId,
    gnd: NetId,
    inputs: HashMap<NetId, Logic>,
    values: Vec<Logic>,
}

impl<'a> Simulator<'a> {
    /// Builds a simulator; rails are found by their conventional
    /// names (see [`CheckOptions`]).
    ///
    /// # Errors
    ///
    /// Fails if the netlist has no recognizable VDD or GND net.
    pub fn new(netlist: &'a Netlist) -> Result<Self, BuildSimError> {
        let names = CheckOptions::default();
        let find = |candidates: &[String]| -> Option<NetId> {
            candidates.iter().find_map(|n| netlist.net_by_name(n))
        };
        let vdd = find(&names.vdd_names).ok_or(BuildSimError { missing: "VDD" })?;
        let gnd = find(&names.gnd_names).ok_or(BuildSimError { missing: "GND" })?;
        Ok(Simulator {
            netlist,
            vdd,
            gnd,
            inputs: HashMap::new(),
            values: vec![Logic::X; netlist.net_count()],
        })
    }

    /// Forces a net to a value (a chip input). Forcing `Logic::X`
    /// drives an *unknown* into the circuit; use
    /// [`Simulator::release_input`] to hand the net back to the
    /// circuit (it then holds its charge).
    pub fn set_input(&mut self, net: NetId, value: Logic) {
        self.inputs.insert(net, value);
    }

    /// Stops forcing a net; it keeps its last value as stored charge
    /// until the circuit drives it.
    pub fn release_input(&mut self, net: NetId) {
        self.inputs.remove(&net);
    }

    /// Convenience: force a net found by name.
    ///
    /// # Panics
    ///
    /// Panics if no net carries the name.
    pub fn set_input_by_name(&mut self, name: &str, value: Logic) {
        let net = self
            .netlist
            .net_by_name(name)
            .unwrap_or_else(|| panic!("no net named {name}"));
        self.set_input(net, value);
    }

    /// The current value of a net.
    pub fn value(&self, net: NetId) -> Logic {
        self.values[net.0 as usize]
    }

    /// The current value of a named net.
    ///
    /// # Panics
    ///
    /// Panics if no net carries the name.
    pub fn value_by_name(&self, name: &str) -> Logic {
        self.value(
            self.netlist
                .net_by_name(name)
                .unwrap_or_else(|| panic!("no net named {name}")),
        )
    }

    /// Relaxes the network to a fixpoint. Returns the number of
    /// sweeps taken; nets that fail to stabilize within the bound
    /// (ring oscillators and the like) are forced to X.
    pub fn settle(&mut self) -> usize {
        let n = self.netlist.net_count();
        let bound = 4 * n + 16;
        let mut sweeps = 0;
        let mut changed_nets: Vec<bool> = vec![false; n];
        while sweeps < bound {
            sweeps += 1;
            let next = self.sweep_once();
            let mut any = false;
            for (i, (&old, &new)) in self.values.iter().zip(&next).enumerate() {
                if old != new {
                    any = true;
                    changed_nets[i] = true;
                }
            }
            self.values = next;
            if !any {
                return sweeps;
            }
            if sweeps == bound {
                break;
            }
        }
        // Oscillation: X the nets that were still moving.
        for (i, &moving) in changed_nets.iter().enumerate() {
            if moving {
                self.values[i] = Logic::X;
            }
        }
        let _ = self.sweep_once();
        sweeps
    }

    /// One synchronous evaluation sweep: per net, the strongest
    /// signal reachable through conducting channels.
    fn sweep_once(&self) -> Vec<Logic> {
        let n = self.netlist.net_count();
        // (strength, value) pairs resolved per net. Start from charge
        // retention of the previous value. Rails and forced inputs
        // are pinned and never overwritten by propagation.
        let mut strength: Vec<Strength> = vec![Strength::Charged; n];
        let mut value: Vec<Logic> = self.values.clone();
        let mut pinned = vec![false; n];
        let pin = |net: NetId,
                   v: Logic,
                   pinned: &mut Vec<bool>,
                   strength: &mut Vec<Strength>,
                   value: &mut Vec<Logic>| {
            pinned[net.0 as usize] = true;
            strength[net.0 as usize] = Strength::Driven;
            value[net.0 as usize] = v;
        };
        pin(self.vdd, Logic::One, &mut pinned, &mut strength, &mut value);
        pin(
            self.gnd,
            Logic::Zero,
            &mut pinned,
            &mut strength,
            &mut value,
        );
        for (&net, &v) in &self.inputs {
            pin(net, v, &mut pinned, &mut strength, &mut value);
        }

        // Propagate through channels until the (strength, value)
        // labelling stabilizes. Strengths only grow and values only
        // degrade 0/1 → X at fixed strength, so this terminates.
        loop {
            let mut changed = false;
            for d in self.netlist.devices() {
                let (conducts, channel_strength, smear) = match d.kind {
                    DeviceKind::Capacitor => continue,
                    DeviceKind::Depletion => (true, Strength::Resistive, false),
                    DeviceKind::Enhancement => {
                        // Gates read the *current* labelling so that
                        // freshly-pinned inputs switch their channels
                        // before stale conduction can destroy stored
                        // charge.
                        match value[d.gate.0 as usize] {
                            Logic::One => (true, Strength::Driven, false),
                            Logic::Zero => (false, Strength::Driven, false),
                            // Unknown gate: conducts, but whatever it
                            // delivers is unknown.
                            Logic::X => (true, Strength::Driven, true),
                        }
                    }
                };
                if !conducts {
                    continue;
                }
                for (from, to) in [(d.source, d.drain), (d.drain, d.source)] {
                    let (fi, ti) = (from.0 as usize, to.0 as usize);
                    if pinned[ti] {
                        continue;
                    }
                    let s = strength[fi].min(channel_strength);
                    let v = if smear {
                        value[fi].invert_unknown()
                    } else {
                        value[fi]
                    };
                    if s > strength[ti] {
                        strength[ti] = s;
                        value[ti] = v;
                        changed = true;
                    } else if s == strength[ti]
                        && s > Strength::Charged
                        && value[ti] != v
                        && value[ti] != Logic::X
                    {
                        value[ti] = Logic::X;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Device;
    use ace_geom::Point;

    fn device(kind: DeviceKind, gate: NetId, source: NetId, drain: NetId) -> Device {
        Device {
            kind,
            gate,
            source,
            drain,
            length: 2,
            width: 2,
            location: Point::ORIGIN,
            channel_geometry: vec![],
        }
    }

    /// vdd, gnd, in, out with a canonical inverter.
    fn inverter() -> (Netlist, NetId, NetId) {
        let mut nl = Netlist::new();
        let vdd = nl.add_net();
        let gnd = nl.add_net();
        let inp = nl.add_net();
        let out = nl.add_net();
        nl.add_name(vdd, "VDD");
        nl.add_name(gnd, "GND");
        nl.add_device(device(DeviceKind::Depletion, out, vdd, out));
        nl.add_device(device(DeviceKind::Enhancement, inp, out, gnd));
        (nl, inp, out)
    }

    #[test]
    fn inverter_inverts() {
        let (nl, inp, out) = inverter();
        let mut sim = Simulator::new(&nl).expect("rails");
        sim.set_input(inp, Logic::Zero);
        sim.settle();
        assert_eq!(sim.value(out), Logic::One);
        sim.set_input(inp, Logic::One);
        sim.settle();
        assert_eq!(sim.value(out), Logic::Zero);
    }

    #[test]
    fn unknown_input_gives_unknown_output() {
        let (nl, inp, out) = inverter();
        let mut sim = Simulator::new(&nl).expect("rails");
        sim.set_input(inp, Logic::One);
        sim.settle();
        sim.set_input(inp, Logic::X);
        sim.settle();
        assert_eq!(sim.value(out), Logic::X);
    }

    #[test]
    fn nand_truth_table() {
        let mut nl = Netlist::new();
        let vdd = nl.add_net();
        let gnd = nl.add_net();
        let a = nl.add_net();
        let b = nl.add_net();
        let out = nl.add_net();
        let mid = nl.add_net();
        nl.add_name(vdd, "VDD");
        nl.add_name(gnd, "GND");
        nl.add_device(device(DeviceKind::Depletion, out, vdd, out));
        nl.add_device(device(DeviceKind::Enhancement, a, out, mid));
        nl.add_device(device(DeviceKind::Enhancement, b, mid, gnd));
        let mut sim = Simulator::new(&nl).expect("rails");
        for (va, vb, expect) in [
            (Logic::Zero, Logic::Zero, Logic::One),
            (Logic::Zero, Logic::One, Logic::One),
            (Logic::One, Logic::Zero, Logic::One),
            (Logic::One, Logic::One, Logic::Zero),
        ] {
            sim.set_input(a, va);
            sim.set_input(b, vb);
            sim.settle();
            assert_eq!(sim.value(out), expect, "NAND({va}, {vb})");
        }
    }

    #[test]
    fn pass_transistor_isolation_retains_charge() {
        // out — [pass gate g] — src. With g=1, out follows src; with
        // g=0, out keeps its old value (dynamic node).
        let mut nl = Netlist::new();
        let vdd = nl.add_net();
        let gnd = nl.add_net();
        let g = nl.add_net();
        let src = nl.add_net();
        let out = nl.add_net();
        nl.add_name(vdd, "VDD");
        nl.add_name(gnd, "GND");
        nl.add_device(device(DeviceKind::Enhancement, g, src, out));
        let mut sim = Simulator::new(&nl).expect("rails");
        sim.set_input(g, Logic::One);
        sim.set_input(src, Logic::One);
        sim.settle();
        assert_eq!(sim.value(out), Logic::One);
        // Close the gate, drive src low: out keeps the stored 1.
        sim.set_input(g, Logic::Zero);
        sim.set_input(src, Logic::Zero);
        sim.settle();
        assert_eq!(sim.value(out), Logic::One);
    }

    #[test]
    fn ratioed_fight_pulldown_wins() {
        // Depletion pull-up vs a conducting pull-down on the same net:
        // the driven 0 must beat the resistive 1 — NMOS is ratioed.
        let (nl, inp, out) = inverter();
        let mut sim = Simulator::new(&nl).expect("rails");
        sim.set_input(inp, Logic::One);
        sim.settle();
        assert_eq!(sim.value(out), Logic::Zero);
    }

    #[test]
    fn ring_oscillator_goes_x() {
        // An inverter driving its own input never settles.
        let mut nl = Netlist::new();
        let vdd = nl.add_net();
        let gnd = nl.add_net();
        let out = nl.add_net();
        nl.add_name(vdd, "VDD");
        nl.add_name(gnd, "GND");
        nl.add_device(device(DeviceKind::Depletion, out, vdd, out));
        nl.add_device(device(DeviceKind::Enhancement, out, out, gnd));
        let mut sim = Simulator::new(&nl).expect("rails");
        sim.settle();
        // A self-inverting node cannot be 0 or 1 stably... with this
        // switch-level model the fight resolves to the driven side or
        // X; either way it must terminate and not panic.
        let _ = sim.value(out);
    }

    #[test]
    fn missing_rails_is_an_error() {
        let nl = Netlist::new();
        let err = Simulator::new(&nl).unwrap_err();
        assert!(err.to_string().contains("VDD"));
    }
}
