//! SPICE netlist export: devices plus per-net lumped capacitance to
//! ground.
//!
//! The exporter writes deterministic text (integer-only arithmetic,
//! nets in id order, devices in extraction order) so golden tests can
//! pin its bytes. Node names are the net's primary user name when
//! present (sanitized to SPICE-safe characters), `N<id>` otherwise;
//! nets named `GND`/`GND!`/`VSS`/`VSS!` map to the SPICE ground node
//! `0`.

use std::fmt::Write as _;

use crate::model::{NetId, Netlist};
use crate::parasitics::{net_capacitance_af, ParasiticParams};

/// Names mapped to the SPICE ground node `0`.
const GROUND_NAMES: [&str; 4] = ["GND", "GND!", "VSS", "VSS!"];

fn node_name(nl: &Netlist, id: NetId) -> String {
    let net = nl.net(id);
    if net.names.iter().any(|n| GROUND_NAMES.contains(&n.as_str())) {
        return "0".to_string();
    }
    match net.primary_name() {
        Some(name) => name
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect(),
        None => format!("N{}", id.0),
    }
}

/// Centimicrons rendered as microns with two decimals (`400` → `4.00U`).
fn microns(v: i64) -> String {
    format!("{}.{:02}U", v / 100, (v % 100).abs())
}

/// Attofarads rendered as femtofarads with three decimals
/// (`1234` → `1.234F`; SPICE's `F` suffix is femto).
fn femtofarads(af: i64) -> String {
    format!("{}.{:03}F", af / 1000, (af % 1000).abs())
}

/// Writes a SPICE deck: `.model` cards, one `M` card per device, and
/// one `C` card per net with nonzero extracted capacitance.
///
/// # Examples
///
/// ```
/// use ace_wirelist::{write_spice, Netlist, ParasiticParams};
///
/// let deck = write_spice(&Netlist::new(), &ParasiticParams::nmos());
/// assert!(deck.ends_with(".end\n"));
/// ```
pub fn write_spice(nl: &Netlist, params: &ParasiticParams) -> String {
    let mut out = String::new();
    let title = if nl.name.is_empty() {
        "ace extraction"
    } else {
        &nl.name
    };
    let _ = writeln!(out, "* {title}");
    let _ = writeln!(out, ".model nenh nmos");
    let _ = writeln!(out, ".model ndep nmos");
    let _ = writeln!(out, ".model ncap nmos");
    for (i, d) in nl.devices().iter().enumerate() {
        let model = match d.kind {
            crate::model::DeviceKind::Enhancement => "nenh",
            crate::model::DeviceKind::Depletion => "ndep",
            crate::model::DeviceKind::Capacitor => "ncap",
        };
        let _ = writeln!(
            out,
            "M{i} {} {} {} 0 {model} L={} W={}",
            node_name(nl, d.drain),
            node_name(nl, d.gate),
            node_name(nl, d.source),
            microns(d.length),
            microns(d.width),
        );
    }
    let mut cap_index = 0usize;
    for (id, net) in nl.nets() {
        let cap = net_capacitance_af(&net.parasitics, params);
        if cap <= 0 {
            continue;
        }
        let node = node_name(nl, id);
        if node == "0" {
            continue; // ground-to-ground capacitor is meaningless
        }
        let _ = writeln!(out, "C{cap_index} {node} 0 {}", femtofarads(cap));
        cap_index += 1;
    }
    out.push_str(".end\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Device, DeviceKind};
    use crate::parasitics::NetParasitics;
    use ace_geom::{Layer, Point, Rect};

    #[test]
    fn deck_shape_is_stable() {
        let mut nl = Netlist::new();
        nl.name = "inv.cif".into();
        let vdd = nl.add_net();
        let out_net = nl.add_net();
        let inp = nl.add_net();
        let gnd = nl.add_net();
        nl.add_name(vdd, "VDD");
        nl.add_name(out_net, "OUT");
        nl.add_name(inp, "IN/2"); // sanitized
        nl.add_name(gnd, "GND!");
        let mut p = NetParasitics::default();
        p.add_rect(Layer::Metal, &Rect::new(0, 0, 1000, 250));
        nl.add_parasitics(out_net, &p);
        nl.add_parasitics(gnd, &p);
        nl.add_device(Device {
            kind: DeviceKind::Enhancement,
            gate: inp,
            source: gnd,
            drain: out_net,
            length: 400,
            width: 2800,
            location: Point::new(0, 0),
            channel_geometry: vec![],
        });
        let deck = write_spice(&nl, &ParasiticParams::nmos());
        assert!(deck.starts_with("* inv.cif\n"));
        assert!(deck.contains("M0 OUT IN_2 0 0 nenh L=4.00U W=28.00U"));
        // OUT: 4λ × 1λ metal = 4·30 aF area + 10λ · 40 aF fringe.
        assert!(deck.contains("C0 OUT 0 0.520F"));
        // The ground net's capacitance is suppressed.
        assert_eq!(deck.matches("C1 ").count(), 0);
        assert!(deck.ends_with(".end\n"));
    }
}
