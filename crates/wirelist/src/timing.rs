//! Elmore-style RC delay model over the extracted transistor graph.
//!
//! Each device stage charges its output net's total capacitance
//! (wire parasitics plus the gate loads hanging on the net) through
//! the device's on-resistance in series with the net's own
//! segment-resistance estimate:
//!
//! ```text
//! τ(stage) = (R_on(device) + R(net)) · C(net)
//! ```
//!
//! Signal flow follows gate → source/drain: a transition on a
//! device's gate net produces, one stage delay later, a transition on
//! its channel terminals. The critical path is the longest such chain
//! of stages, found by a deterministic depth-first longest-path
//! search with cycle edges cut (pass-transistor networks contain
//! cycles; back edges are skipped rather than followed).
//!
//! Supply rails (`VDD`/`GND`/`VSS` names, with or without the CIF `!`
//! global suffix) are excluded from traversal — every device touches
//! them, and the model's lumped C would otherwise funnel every path
//! through the rails.
//!
//! All arithmetic is integer; delays are reported in zeptoseconds
//! (10⁻²¹ s: milliohms × attofarads), rendered as picoseconds.

use std::fmt::Write as _;

use ace_geom::Point;

use crate::model::{DeviceKind, NetId, Netlist};
use crate::parasitics::{
    device_gate_cap_af, device_on_resistance_mohm, net_capacitance_af, net_resistance_mohm,
    ParasiticParams,
};

/// Net names treated as supply rails and excluded from traversal.
const SUPPLY_NAMES: [&str; 6] = ["VDD", "VDD!", "GND", "GND!", "VSS", "VSS!"];

/// One stage of a delay path: a device driving its output net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stage {
    /// Index into [`Netlist::devices`] of the driving device.
    pub device: usize,
    /// The device's kind (for rendering).
    pub kind: DeviceKind,
    /// The device's channel location.
    pub location: Point,
    /// The gate net the stage's input arrives on.
    pub from: NetId,
    /// The channel-terminal net the stage drives.
    pub to: NetId,
    /// Stage delay, zeptoseconds.
    pub delay_zs: i64,
    /// Total load capacitance of `to`, attofarads.
    pub cap_af: i64,
    /// Driving resistance (device on-resistance + net segment
    /// resistance), milliohms.
    pub res_mohm: i64,
}

/// The longest Elmore stage chain in a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalPath {
    /// The net the path starts from (a primary input or the gate of
    /// the first stage).
    pub start: NetId,
    /// Stages in propagation order.
    pub stages: Vec<Stage>,
    /// Total delay, zeptoseconds.
    pub delay_zs: i64,
}

impl CriticalPath {
    /// Total delay in femtoseconds (rounded down).
    pub fn delay_fs(&self) -> i64 {
        self.delay_zs / 1_000_000
    }

    /// Renders a human-readable critical-path report.
    pub fn render(&self, nl: &Netlist) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "critical path: {} stage{}, {}",
            self.stages.len(),
            if self.stages.len() == 1 { "" } else { "s" },
            ps(self.delay_zs),
        );
        for s in &self.stages {
            let _ = writeln!(
                out,
                "  {} -> {}  via {} @ ({}, {})  {}  (C={} aF, R={} mOhm)",
                net_label(nl, s.from),
                net_label(nl, s.to),
                s.kind.part_name(),
                s.location.x,
                s.location.y,
                ps(s.delay_zs),
                s.cap_af,
                s.res_mohm,
            );
        }
        out
    }
}

fn net_label(nl: &Netlist, id: NetId) -> String {
    match nl.net(id).primary_name() {
        Some(name) => name.to_string(),
        None => id.to_string(),
    }
}

/// Formats zeptoseconds as picoseconds with three decimals.
fn ps(zs: i64) -> String {
    let fs = zs / 1_000_000;
    format!("{}.{:03} ps", fs / 1000, fs % 1000)
}

/// Total load capacitance of every net: wire parasitics plus the
/// gate capacitance of each device whose gate hangs on the net.
pub fn net_loads_af(nl: &Netlist, params: &ParasiticParams) -> Vec<i64> {
    let mut cap: Vec<i64> = nl
        .nets()
        .map(|(_, n)| net_capacitance_af(&n.parasitics, params))
        .collect();
    for d in nl.devices() {
        cap[d.gate.0 as usize] =
            cap[d.gate.0 as usize].saturating_add(device_gate_cap_af(d.length, d.width, params));
    }
    cap
}

/// Finds the critical path, or `None` for a netlist with no
/// propagating stages.
///
/// # Examples
///
/// ```
/// use ace_wirelist::{critical_path, Netlist, ParasiticParams};
///
/// let path = critical_path(&Netlist::new(), &ParasiticParams::nmos());
/// assert!(path.is_none());
/// ```
pub fn critical_path(nl: &Netlist, params: &ParasiticParams) -> Option<CriticalPath> {
    let n = nl.net_count();
    if n == 0 {
        return None;
    }
    let cap = net_loads_af(nl, params);
    let net_res: Vec<i64> = nl
        .nets()
        .map(|(_, net)| net_resistance_mohm(&net.parasitics, params))
        .collect();
    let excluded: Vec<bool> = nl
        .nets()
        .map(|(_, net)| net.names.iter().any(|x| SUPPLY_NAMES.contains(&x.as_str())))
        .collect();

    // Edges, grouped per source net in device order (deterministic).
    struct Edge {
        to: u32,
        device: usize,
        delay_zs: i64,
    }
    let mut edges: Vec<Vec<Edge>> = (0..n).map(|_| Vec::new()).collect();
    for (di, d) in nl.devices().iter().enumerate() {
        if d.kind == DeviceKind::Capacitor || excluded[d.gate.0 as usize] {
            continue;
        }
        let r_on = device_on_resistance_mohm(d.length, d.width, params);
        for to in [d.source, d.drain] {
            if to == d.gate || excluded[to.0 as usize] {
                continue;
            }
            let r = (r_on as i128) + (net_res[to.0 as usize] as i128);
            let delay = (r * (cap[to.0 as usize] as i128)).clamp(0, i64::MAX as i128) as i64;
            edges[d.gate.0 as usize].push(Edge {
                to: to.0,
                device: di,
                delay_zs: delay,
            });
        }
    }

    // Longest path via DFS with back edges (cycles) cut. `best[v]`
    // is the longest chain starting at v; `via[v]` the first edge of
    // that chain.
    const UNVISITED: u8 = 0;
    const ON_STACK: u8 = 1;
    const DONE: u8 = 2;
    let mut state = vec![UNVISITED; n];
    let mut best = vec![0i64; n];
    let mut via: Vec<Option<usize>> = vec![None; n];
    let mut stack: Vec<(u32, usize)> = Vec::new();
    for start in 0..n as u32 {
        if state[start as usize] != UNVISITED {
            continue;
        }
        state[start as usize] = ON_STACK;
        stack.push((start, 0));
        while let Some(&mut (v, ref mut ei)) = stack.last_mut() {
            let vi = v as usize;
            if *ei == edges[vi].len() {
                state[vi] = DONE;
                stack.pop();
                continue;
            }
            let e = &edges[vi][*ei];
            match state[e.to as usize] {
                DONE => {
                    let total = e.delay_zs.saturating_add(best[e.to as usize]);
                    if total > best[vi] {
                        best[vi] = total;
                        via[vi] = Some(*ei);
                    }
                    *ei += 1;
                }
                ON_STACK => *ei += 1, // back edge: cut the cycle
                _ => {
                    state[e.to as usize] = ON_STACK;
                    stack.push((e.to, 0));
                }
            }
        }
    }

    // Best start net: highest total, lowest id on ties.
    let start = (0..n).max_by_key(|&v| (best[v], std::cmp::Reverse(v)))?;
    if best[start] == 0 {
        return None;
    }
    let mut stages = Vec::new();
    let mut v = start;
    while let Some(ei) = via[v] {
        let e = &edges[v][ei];
        let d = &nl.devices()[e.device];
        let to = e.to as usize;
        stages.push(Stage {
            device: e.device,
            kind: d.kind,
            location: d.location,
            from: NetId(v as u32),
            to: NetId(e.to),
            delay_zs: e.delay_zs,
            cap_af: cap[to],
            res_mohm: device_on_resistance_mohm(d.length, d.width, params)
                .saturating_add(net_res[to]),
        });
        v = to;
    }
    Some(CriticalPath {
        start: NetId(start as u32),
        stages,
        delay_zs: best[start],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Device;
    use crate::parasitics::NetParasitics;
    use ace_geom::{Layer, Rect};

    fn two_stage_chain() -> Netlist {
        // IN -> A -> OUT through two enhancement devices; A carries
        // some poly wire so its RC is nonzero.
        let mut nl = Netlist::new();
        let inp = nl.add_net();
        let a = nl.add_net();
        let out = nl.add_net();
        let gnd = nl.add_net();
        nl.add_name(inp, "IN");
        nl.add_name(a, "A");
        nl.add_name(out, "OUT");
        nl.add_name(gnd, "GND!");
        let mut p = NetParasitics::default();
        p.add_rect(Layer::Poly, &Rect::new(0, 0, 2500, 250));
        nl.add_parasitics(a, &p);
        nl.add_parasitics(out, &p);
        for (gate, drain) in [(inp, a), (a, out)] {
            nl.add_device(Device {
                kind: DeviceKind::Enhancement,
                gate,
                source: gnd,
                drain,
                length: 500,
                width: 500,
                location: Point::new(0, 0),
                channel_geometry: vec![],
            });
        }
        nl
    }

    #[test]
    fn chain_yields_two_stages() {
        let nl = two_stage_chain();
        let path = critical_path(&nl, &ParasiticParams::nmos()).expect("path exists");
        assert_eq!(path.stages.len(), 2);
        assert_eq!(nl.net(path.start).primary_name(), Some("IN"));
        assert_eq!(
            path.delay_zs,
            path.stages.iter().map(|s| s.delay_zs).sum::<i64>()
        );
        let report = path.render(&nl);
        assert!(report.contains("critical path: 2 stages"));
        assert!(report.contains("IN -> A"));
        assert!(report.contains("A -> OUT"));
    }

    #[test]
    fn cycles_do_not_hang_the_search() {
        // Two cross-coupled devices: A gates a device driving B, B
        // gates a device driving A.
        let mut nl = Netlist::new();
        let a = nl.add_net();
        let b = nl.add_net();
        for (gate, drain) in [(a, b), (b, a)] {
            nl.add_device(Device {
                kind: DeviceKind::Enhancement,
                gate,
                source: gate, // keep the rail count down; self-loop skipped
                drain,
                length: 500,
                width: 500,
                location: Point::new(0, 0),
                channel_geometry: vec![],
            });
        }
        let path = critical_path(&nl, &ParasiticParams::nmos()).expect("finite path");
        assert!(path.stages.len() <= 2);
    }

    #[test]
    fn supply_rails_are_excluded() {
        let mut nl = Netlist::new();
        let inp = nl.add_net();
        let gnd = nl.add_net();
        nl.add_name(inp, "IN");
        nl.add_name(gnd, "GND!");
        nl.add_device(Device {
            kind: DeviceKind::Enhancement,
            gate: inp,
            source: gnd,
            drain: gnd,
            length: 500,
            width: 500,
            location: Point::new(0, 0),
            channel_geometry: vec![],
        });
        // The only edge lands on a rail, so there is no path.
        assert!(critical_path(&nl, &ParasiticParams::nmos()).is_none());
    }
}
