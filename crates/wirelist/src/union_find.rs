/// Disjoint-set forest with path halving and union by size.
///
/// Net merging is the fundamental operation of circuit extraction:
/// two nets that were distinct higher up the chip may be found
/// connected lower down ("two nets that were earlier distinct can be
/// merged", paper §4), and flattening a hierarchical wirelist unions
/// child exports with parent nets. Both this crate and the extractor
/// crates use this structure.
///
/// # Examples
///
/// ```
/// use ace_wirelist::UnionFind;
///
/// let mut uf = UnionFind::new();
/// let a = uf.make_set();
/// let b = uf.make_set();
/// let c = uf.make_set();
/// uf.union(a, b);
/// assert_eq!(uf.find(a), uf.find(b));
/// assert_ne!(uf.find(a), uf.find(c));
/// ```
#[derive(Debug, Clone, Default)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    unions: u64,
}

impl UnionFind {
    /// Creates an empty forest.
    pub fn new() -> Self {
        UnionFind::default()
    }

    /// Creates a forest with `n` singleton sets.
    pub fn with_len(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            unions: 0,
        }
    }

    /// Adds a new singleton set, returning its element.
    pub fn make_set(&mut self) -> u32 {
        let id = self.parent.len() as u32;
        self.parent.push(id);
        self.size.push(1);
        id
    }

    /// Number of elements (not sets).
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` if the forest has no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of `union` calls that actually merged two sets.
    pub fn union_count(&self) -> u64 {
        self.unions
    }

    /// The canonical representative of `x`'s set.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not an element.
    pub fn find(&mut self, mut x: u32) -> u32 {
        loop {
            let p = self.parent[x as usize];
            if p == x {
                return x;
            }
            // Path halving.
            let gp = self.parent[p as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
    }

    /// Merges the sets containing `a` and `b`. Returns the new root.
    pub fn union(&mut self, a: u32, b: u32) -> u32 {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return ra;
        }
        self.unions += 1;
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        big
    }

    /// `true` if `a` and `b` are in the same set.
    pub fn same_set(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Maps every element to a dense id in `0..set_count`, numbering
    /// sets in order of first appearance. Returns `(map, set_count)`.
    pub fn compress(&mut self) -> (Vec<u32>, usize) {
        let n = self.parent.len();
        let mut dense: Vec<u32> = vec![u32::MAX; n];
        let mut map = Vec::with_capacity(n);
        let mut next = 0u32;
        for x in 0..n as u32 {
            let root = self.find(x) as usize;
            if dense[root] == u32::MAX {
                dense[root] = next;
                next += 1;
            }
            map.push(dense[root]);
        }
        (map, next as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_are_distinct() {
        let mut uf = UnionFind::with_len(5);
        for i in 0..5 {
            for j in 0..5 {
                assert_eq!(uf.same_set(i, j), i == j);
            }
        }
    }

    #[test]
    fn union_is_transitive() {
        let mut uf = UnionFind::with_len(4);
        uf.union(0, 1);
        uf.union(2, 3);
        assert!(!uf.same_set(0, 2));
        uf.union(1, 2);
        assert!(uf.same_set(0, 3));
        assert_eq!(uf.union_count(), 3);
    }

    #[test]
    fn redundant_unions_do_not_count() {
        let mut uf = UnionFind::with_len(2);
        uf.union(0, 1);
        uf.union(1, 0);
        uf.union(0, 0);
        assert_eq!(uf.union_count(), 1);
    }

    #[test]
    fn compress_produces_dense_first_appearance_ids() {
        let mut uf = UnionFind::with_len(6);
        uf.union(0, 3);
        uf.union(4, 5);
        let (map, count) = uf.compress();
        assert_eq!(count, 4);
        assert_eq!(map[0], map[3]);
        assert_eq!(map[4], map[5]);
        assert_eq!(map[0], 0); // first appearance order
        assert_eq!(map[1], 1);
        assert_eq!(map[2], 2);
        assert_eq!(map[4], 3);
    }

    #[test]
    fn make_set_grows() {
        let mut uf = UnionFind::new();
        assert!(uf.is_empty());
        let a = uf.make_set();
        let b = uf.make_set();
        assert_eq!(uf.len(), 2);
        assert!(!uf.same_set(a, b));
    }

    #[test]
    fn long_chain_compresses() {
        let n = 10_000;
        let mut uf = UnionFind::with_len(n);
        for i in 1..n as u32 {
            uf.union(i - 1, i);
        }
        let (map, count) = uf.compress();
        assert_eq!(count, 1);
        assert!(map.iter().all(|&m| m == 0));
    }
}
