use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::hier::{HierNetlist, PartDef};
use crate::model::{DeviceKind, Netlist};
use crate::parasitics::{net_capacitance_af, net_resistance_mohm, ParasiticParams};

/// Output options for [`write_wirelist`].
///
/// "User options exist to force the extractor to output the geometry
/// associated with each net and device. Under normal operation this
/// is suppressed." (paper §3.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WirelistOptions {
    /// Emit `(CIF "…")` geometry blocks for nets and channels.
    pub include_geometry: bool,
    /// Emit `(Parasitics …)` sections for nets with non-zero
    /// accumulated area/perimeter/cut totals, including the derived
    /// capacitance (aF) and resistance (mΩ) under the default NMOS
    /// parameter table.
    pub include_parasitics: bool,
}

impl WirelistOptions {
    /// Default options (geometry suppressed).
    pub fn new() -> Self {
        WirelistOptions::default()
    }

    /// Enables geometry output.
    pub fn with_geometry(mut self) -> Self {
        self.include_geometry = true;
        self
    }

    /// Enables parasitic output.
    pub fn with_parasitics(mut self) -> Self {
        self.include_parasitics = true;
        self
    }
}

/// Serializes a flat [`Netlist`] in the CMU wirelist format
/// (paper Figure 3-4).
///
/// # Examples
///
/// ```
/// use ace_wirelist::{write_wirelist, Netlist, WirelistOptions};
///
/// let mut nl = Netlist::new();
/// let n = nl.add_net();
/// nl.add_name(n, "VDD");
/// nl.name = "chip.cif".into();
/// let text = write_wirelist(&nl, WirelistOptions::new());
/// assert!(text.starts_with("(DefPart \"chip.cif\""));
/// assert!(text.contains("(Net N0 VDD"));
/// ```
pub fn write_wirelist(netlist: &Netlist, options: WirelistOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "(DefPart \"{}\"", netlist.name);

    // Declare only the primitive kinds that occur.
    let kinds: BTreeSet<DeviceKind> = netlist.devices().iter().map(|d| d.kind).collect();
    for kind in &kinds {
        let _ = writeln!(
            out,
            " (DefPart {} (Export Source Gate Drain))",
            kind.part_name()
        );
    }

    for (index, d) in netlist.devices().iter().enumerate() {
        let _ = writeln!(
            out,
            " (Part {} (InstName D{index}) (Location {} {})",
            d.kind.part_name(),
            d.location.x,
            d.location.y
        );
        let _ = writeln!(
            out,
            "  (T Gate {}) (T Source {}) (T Drain {})",
            d.gate, d.source, d.drain
        );
        let _ = write!(out, "  (Channel (Length {}) (Width {})", d.length, d.width);
        if options.include_geometry && !d.channel_geometry.is_empty() {
            let _ = write!(out, "\n   (CIF \"");
            for r in &d.channel_geometry {
                let c = r.center();
                let _ = write!(
                    out,
                    " L NX; B L{} W{} C{} {};",
                    r.width(),
                    r.height(),
                    c.x,
                    c.y
                );
            }
            let _ = write!(out, " \")");
        }
        let _ = writeln!(out, "))");
    }

    let mut locals: Vec<String> = Vec::new();
    for (id, net) in netlist.nets() {
        locals.push(id.to_string());
        let _ = write!(out, " (Net {id}");
        for name in &net.names {
            let _ = write!(out, " {name}");
        }
        if let Some(at) = net.location {
            let _ = write!(out, " (Location {} {})", at.x, at.y);
        }
        if options.include_geometry && !net.geometry.is_empty() {
            let _ = write!(out, "\n  (CIF \"");
            for (layer, r) in &net.geometry {
                let c = r.center();
                let _ = write!(
                    out,
                    " L {}; B L{} W{} C{} {};",
                    layer.cif_name(),
                    r.width(),
                    r.height(),
                    c.x,
                    c.y
                );
            }
            let _ = write!(out, " \")");
        }
        if options.include_parasitics && !net.parasitics.is_zero() {
            let p = &net.parasitics;
            let params = ParasiticParams::nmos();
            let _ = write!(
                out,
                "\n  (Parasitics (Area {} {} {}) (Perimeter {} {} {}) (CutArea {}) \
                 (Cap aF {}) (Res mOhm {}))",
                p.area[0],
                p.area[1],
                p.area[2],
                p.perimeter[0],
                p.perimeter[1],
                p.perimeter[2],
                p.cut_area,
                net_capacitance_af(p, &params),
                net_resistance_mohm(p, &params),
            );
        }
        let _ = writeln!(out, ")");
    }

    let _ = writeln!(out, " (Local {}))", locals.join(" "));
    out
}

/// Serializes a [`HierNetlist`] in the hierarchical wirelist format
/// (HEXT paper Figure 2-2).
///
/// Parts are emitted in definition order (children precede their
/// users when built by the extractor); the top part is instantiated
/// last with `(Name Top)`.
pub fn write_hier_wirelist(hier: &HierNetlist) -> String {
    let mut out = String::new();
    let kinds: BTreeSet<DeviceKind> = hier
        .parts()
        .iter()
        .flat_map(|p| p.devices.iter().map(|d| d.kind))
        .collect();
    for kind in &kinds {
        let _ = writeln!(out, "(DefPart {} (Exports G S D))", kind.part_name());
    }
    for part in hier.parts() {
        write_part(&mut out, hier, part);
    }
    if let Some(top) = hier.top() {
        let _ = writeln!(out, "(Part {} (Name Top))", hier.part(top).name);
    }
    out
}

fn write_part(out: &mut String, hier: &HierNetlist, part: &PartDef) {
    let _ = writeln!(out, "(DefPart {}", part.name);
    let exports: Vec<String> = part.exports.iter().map(|n| format!("N{n}")).collect();
    let _ = writeln!(out, " (Exports {})", exports.join(" "));

    for (index, d) in part.devices.iter().enumerate() {
        let _ = writeln!(
            out,
            " (Part {} (Name D{index}) (Loc {} {}) (T G {}) (T S {}) (T D {}) \
             (Channel (Length {}) (Width {})))",
            d.kind.part_name(),
            d.location.x,
            d.location.y,
            d.gate,
            d.source,
            d.drain,
            d.length,
            d.width
        );
    }

    for sp in &part.subparts {
        let _ = writeln!(
            out,
            " (Part {} (Name {}) (LocOffset {} {}))",
            hier.part(sp.part).name,
            sp.name,
            sp.loc_offset.x,
            sp.loc_offset.y
        );
        for &(child, parent) in &sp.net_map {
            let _ = writeln!(out, " (Net {}/N{child} N{parent})", sp.name);
        }
    }

    for &(a, b) in &part.equivalences {
        let _ = writeln!(out, " (Net N{a} N{b})");
    }
    for (net, name) in &part.net_names {
        let _ = writeln!(out, " (NetName N{net} {name})");
    }

    let exported: BTreeSet<u32> = part.exports.iter().copied().collect();
    let locals: Vec<String> = (0..part.net_count)
        .filter(|n| !exported.contains(n))
        .map(|n| format!("N{n}"))
        .collect();
    let _ = writeln!(out, " (Local {}))", locals.join(" "));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hier::{PartDef, SubPart};
    use crate::model::{Device, NetId};
    use ace_geom::{Layer, Point, Rect};

    fn sample() -> Netlist {
        let mut nl = Netlist::new();
        let vdd = nl.add_net();
        let out = nl.add_net();
        let inp = nl.add_net();
        let gnd = nl.add_net();
        nl.add_name(vdd, "VDD");
        nl.add_name(gnd, "GND");
        nl.set_location(vdd, Point::new(-2600, 3800));
        nl.add_geometry(vdd, Layer::Metal, Rect::new(-2600, 3000, 2200, 3800));
        nl.add_device(Device {
            kind: DeviceKind::Enhancement,
            gate: inp,
            source: out,
            drain: gnd,
            length: 400,
            width: 2800,
            location: Point::new(-800, -400),
            channel_geometry: vec![Rect::new(-800, -2000, -400, -800)],
        });
        nl.name = "inverter.cif".into();
        nl
    }

    #[test]
    fn flat_format_matches_figure_3_4_shape() {
        let text = write_wirelist(&sample(), WirelistOptions::new());
        assert!(text.starts_with("(DefPart \"inverter.cif\""));
        assert!(text.contains("(DefPart nEnh (Export Source Gate Drain))"));
        assert!(text.contains("(Part nEnh (InstName D0) (Location -800 -400)"));
        assert!(text.contains("(T Gate N2) (T Source N1) (T Drain N3)"));
        assert!(text.contains("(Channel (Length 400) (Width 2800)"));
        assert!(text.contains("(Net N0 VDD (Location -2600 3800))"));
        assert!(text.contains("(Local N0 N1 N2 N3))"));
        // Geometry suppressed by default.
        assert!(!text.contains("CIF"));
    }

    #[test]
    fn geometry_option_emits_cif_blocks() {
        let text = write_wirelist(&sample(), WirelistOptions::new().with_geometry());
        assert!(text.contains("L NM; B L4800 W800 C-200 3400;"));
        assert!(text.contains("L NX; B L400 W1200 C-600 -1400;"));
    }

    #[test]
    fn only_used_kinds_are_declared() {
        let text = write_wirelist(&sample(), WirelistOptions::new());
        assert!(!text.contains("nDep"));
        assert!(!text.contains("nCap"));
    }

    #[test]
    fn hier_format_matches_figure_2_2_shape() {
        let mut h = HierNetlist::new();
        let w1 = h.add_part(PartDef {
            name: "Window1".into(),
            net_count: 2,
            exports: vec![0, 1],
            devices: vec![Device {
                kind: DeviceKind::Enhancement,
                gate: NetId(0),
                source: NetId(1),
                drain: NetId(1),
                length: 400,
                width: 400,
                location: Point::new(600, 1600),
                channel_geometry: vec![],
            }],
            ..PartDef::default()
        });
        let w2 = h.add_part(PartDef {
            name: "Window2".into(),
            net_count: 4,
            exports: vec![0, 1],
            subparts: vec![SubPart {
                part: w1,
                name: "P1".into(),
                loc_offset: Point::new(3600, 0),
                net_map: vec![(0, 2), (1, 3)],
            }],
            equivalences: vec![(0, 2)],
            ..PartDef::default()
        });
        h.set_top(w2);
        let text = write_hier_wirelist(&h);
        assert!(text.contains("(DefPart nEnh (Exports G S D))"));
        assert!(text.contains("(DefPart Window1"));
        assert!(text.contains("(Exports N0 N1)"));
        assert!(text.contains("(Part Window1 (Name P1) (LocOffset 3600 0))"));
        assert!(text.contains("(Net P1/N0 N2)"));
        assert!(text.contains("(Net N0 N2)"));
        assert!(text.contains("(Local N2 N3))"));
        assert!(text.trim_end().ends_with("(Part Window2 (Name Top))"));
    }
}
