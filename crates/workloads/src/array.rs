//! Regular cell arrays.
//!
//! [`square_array_cif`] builds the HEXT Table 4-1 workload: "a square
//! array containing N identical cells, where N is an even power of 2
//! (the array is constructed as a complete binary tree with the
//! leaves forming the N cells) … The basic cell here contained a
//! single transistor formed by the overlap of diffusion and
//! polysilicon." [`memory_array_cif`] builds a testram-style memory
//! with richer cells.

use ace_cif::CifWriter;
use ace_geom::{Coord, Layer, Rect};

use crate::cells::{write_ram_cell, RAM_PITCH};

/// Pitch of the minimal single-transistor array cell.
pub const ARRAY_PITCH: Coord = 2500;

/// Writes the minimal array cell: one poly word bar crossing one
/// diffusion bit bar, both spanning the full pitch so tiled copies
/// connect. Two boxes, one transistor.
pub fn write_minimal_cell(w: &mut CifWriter) -> usize {
    w.rect_on(Layer::Poly, Rect::new(0, 1000, ARRAY_PITCH, 1500));
    w.rect_on(Layer::Diffusion, Rect::new(1000, 0, 1500, ARRAY_PITCH));
    2
}

/// Builds a `2^side_log2 × 2^side_log2` array of minimal cells as a
/// complete binary tree of symbols: symbol `i+1` places two copies of
/// symbol `i`, doubling alternately in x and y.
///
/// Total cells: `4^side_log2`.
///
/// # Examples
///
/// ```
/// use ace_workloads::array::{square_array_cif, square_array_cells};
///
/// let cif = square_array_cif(2); // 4×4 = 16 cells
/// assert_eq!(square_array_cells(2), 16);
/// let lib = ace_layout::Library::from_cif_text(&cif)?;
/// assert_eq!(lib.instantiated_box_count(), 32);
/// # Ok::<(), ace_layout::BuildLayoutError>(())
/// ```
pub fn square_array_cif(side_log2: u32) -> String {
    let mut w = CifWriter::new();
    w.begin_symbol(1);
    w.cell_name("bit");
    write_minimal_cell(&mut w);
    w.end_symbol();

    // Symbol i covers extent (ex, ey); symbol i+1 doubles the shorter
    // axis, alternating x / y.
    let mut ex = ARRAY_PITCH;
    let mut ey = ARRAY_PITCH;
    let mut id = 1u32;
    for level in 0..(2 * side_log2) {
        let next = id + 1;
        w.begin_symbol(next);
        if level % 2 == 0 {
            w.call(id, 0, 0);
            w.call(id, ex, 0);
            ex *= 2;
        } else {
            w.call(id, 0, 0);
            w.call(id, 0, ey);
            ey *= 2;
        }
        w.end_symbol();
        id = next;
    }
    w.call(id, 0, 0);
    w.finish()
}

/// Number of cells in [`square_array_cif`]`(side_log2)`.
pub fn square_array_cells(side_log2: u32) -> u64 {
    1u64 << (2 * side_log2)
}

/// Builds a `rows × cols` memory array of RAM cells (word lines in
/// poly, bit lines in diffusion strapped with metal; ≈9 boxes and one
/// transistor per cell), using a row symbol called once per row —
/// the explicit-array CIF idiom.
///
/// # Examples
///
/// ```
/// use ace_workloads::array::memory_array_cif;
///
/// let lib = ace_layout::Library::from_cif_text(&memory_array_cif(4, 8))?;
/// assert_eq!(lib.instantiated_box_count(), 4 * 8 * 10);
/// # Ok::<(), ace_layout::BuildLayoutError>(())
/// ```
pub fn memory_array_cif(rows: u32, cols: u32) -> String {
    let mut w = CifWriter::new();
    w.begin_symbol(1);
    w.cell_name("ramcell");
    write_ram_cell(&mut w);
    w.end_symbol();
    w.begin_symbol(2);
    w.cell_name("ramrow");
    for c in 0..cols {
        w.call(1, c as i64 * RAM_PITCH.0, 0);
    }
    w.end_symbol();
    for r in 0..rows {
        w.call(2, 0, r as i64 * RAM_PITCH.1);
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_core::{extract_text, ExtractOptions};

    #[test]
    fn square_array_device_count() {
        for s in 0..=3u32 {
            let r = extract_text(&square_array_cif(s), ExtractOptions::new()).unwrap();
            assert_eq!(
                r.netlist.device_count() as u64,
                square_array_cells(s),
                "side_log2={s}"
            );
        }
    }

    #[test]
    fn square_array_lines_connect_across_cells() {
        // In a 4×4 array: 4 word (poly) nets, and each diffusion
        // column is cut into 5 segments → 4·5 = 20 diffusion nets.
        let r = extract_text(&square_array_cif(2), ExtractOptions::new()).unwrap();
        let mut nl = r.netlist.clone();
        nl.prune_floating_nets();
        assert_eq!(nl.net_count(), 4 + 20);
        // Each word line gates 4 transistors.
        let deg = nl.net_degrees();
        assert_eq!(deg.iter().filter(|&&d| d == 4).count(), 4);
    }

    #[test]
    fn memory_array_counts() {
        let r = extract_text(&memory_array_cif(3, 5), ExtractOptions::new()).unwrap();
        assert_eq!(r.netlist.device_count(), 15);
        assert_eq!(r.report.boxes, 3 * 5 * 10);
        // Word lines gate 5 cells each (3 nets of degree 5); strapped
        // bit columns carry one terminal per row (5 nets of degree
        // 3); storage nodes are isolated (15 nets of degree 1).
        let nl = r.netlist.clone();
        let deg = nl.net_degrees();
        assert_eq!(deg.iter().filter(|&&d| d == 5).count(), 3);
        assert_eq!(deg.iter().filter(|&&d| d == 3).count(), 5);
        assert_eq!(deg.iter().filter(|&&d| d == 1).count(), 15);
    }

    #[test]
    fn hierarchy_depth_grows_logarithmically() {
        let lib = ace_layout::Library::from_cif_text(&square_array_cif(3)).unwrap();
        // Symbols: 1 leaf + 6 doubling levels = 7, plus (top).
        assert_eq!(lib.cells().len(), 8);
    }
}
