//! The Bentley–Haken–Hon random-square layout model.
//!
//! "It assumes that in an N-rectangle design, the N rectangles are
//! squares with edge length 7.6λ, uniformly distributed over a region
//! [0.8N^{1/2}λ]². … the rectangles are aligned to λ boundaries, and
//! the total number of transistors in the circuit is proportional to
//! N." (paper §4.) This is the model behind the expected-linear-time
//! claim, and the workload for the `ace-linearity` experiment.

use ace_cif::CifWriter;
use ace_geom::{Coord, Layer, Rect, LAMBDA};
use rand::distributions::{Distribution, WeightedIndex};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Parameters of the BHH model.
///
/// Note on the region constant: the paper's text gives the region as
/// `[0.8·N^{1/2}·λ]²`, but with 7.6λ squares that implies ≈ 90×
/// overcoverage — every box overlapping dozens of others, which
/// collapses the layout into one blob and contradicts the model's own
/// "transistors ∝ N" assumption. We preserve the model's *form*
/// (λ-aligned 7.6λ squares, uniform placement) and default the region
/// side to `9.8·√N·λ`, which yields ≈ 60 % area coverage and a device
/// population proportional to N. The multiplier is exposed as
/// [`BhhParams::side_factor`] for sensitivity studies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BhhParams {
    /// Number of rectangles (the paper's N).
    pub boxes: u64,
    /// Square edge length in centimicrons (the paper's 7.6λ = 1900).
    pub edge: Coord,
    /// Region side as a multiple of √N·λ.
    pub side_factor: f64,
    /// PRNG seed for reproducibility.
    pub seed: u64,
}

impl BhhParams {
    /// The calibrated model for `boxes` rectangles (7.6λ squares,
    /// ≈ 60 % coverage).
    pub fn paper(boxes: u64, seed: u64) -> Self {
        BhhParams {
            boxes,
            edge: 1900, // 7.6λ
            side_factor: 9.8,
            seed,
        }
    }

    /// Side of the placement region in centimicrons.
    pub fn region_side(&self) -> Coord {
        ((self.boxes as f64).sqrt() * self.side_factor * LAMBDA as f64).ceil() as Coord
    }

    /// Expected fraction of the region covered by boxes (> 1 means
    /// guaranteed heavy overlap).
    pub fn coverage(&self) -> f64 {
        let region = self.region_side() as f64;
        self.boxes as f64 * (self.edge as f64).powi(2) / (region * region)
    }
}

/// Generates a BHH random chip as CIF text.
///
/// Layers are drawn with weights typical of NMOS artwork (diffusion /
/// poly / metal dominate); random diffusion–poly crossings produce a
/// transistor population roughly proportional to N, as the model
/// assumes.
///
/// # Examples
///
/// ```
/// use ace_workloads::bhh::{bhh_cif, BhhParams};
///
/// let cif = bhh_cif(&BhhParams::paper(100, 42));
/// let lib = ace_layout::Library::from_cif_text(&cif)?;
/// assert_eq!(lib.instantiated_box_count(), 100);
/// # Ok::<(), ace_layout::BuildLayoutError>(())
/// ```
pub fn bhh_cif(params: &BhhParams) -> String {
    let mut rng = ChaCha8Rng::seed_from_u64(params.seed);
    let side = params.region_side();
    let cells = (side / LAMBDA).max(1);
    let layers = [
        Layer::Diffusion,
        Layer::Poly,
        Layer::Metal,
        Layer::Cut,
        Layer::Implant,
        Layer::Buried,
    ];
    let weights = [30u32, 30, 28, 5, 4, 3];
    let pick = WeightedIndex::new(weights).expect("static weights");

    let mut w = CifWriter::new();
    for _ in 0..params.boxes {
        let layer = layers[pick.sample(&mut rng)];
        let x = rng.gen_range(0..cells) * LAMBDA;
        let y = rng.gen_range(0..cells) * LAMBDA;
        w.rect_on(layer, Rect::new(x, y, x + params.edge, y + params.edge));
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_core::{extract_text, ExtractOptions};

    #[test]
    fn region_side_follows_the_model() {
        let p = BhhParams::paper(10_000, 1);
        // 9.8 · 100 · 250 = 245_000 (within 1 for float ceil).
        assert!((p.region_side() - 245_000).abs() <= 1);
        // Coverage is calibrated near 60 %.
        assert!((0.5..0.7).contains(&p.coverage()), "{}", p.coverage());
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let p = BhhParams::paper(200, 7);
        assert_eq!(bhh_cif(&p), bhh_cif(&p));
        let q = BhhParams::paper(200, 8);
        assert_ne!(bhh_cif(&p), bhh_cif(&q));
    }

    #[test]
    fn device_count_scales_roughly_linearly() {
        // The model's key property: transistors ∝ N.
        let count = |n: u64| {
            let cif = bhh_cif(&BhhParams::paper(n, 99));
            let r = extract_text(&cif, ExtractOptions::new()).expect("extract");
            r.netlist.device_count() as f64
        };
        let d1 = count(500);
        let d4 = count(2000);
        assert!(d1 > 10.0, "too few devices at N=500: {d1}");
        let ratio = d4 / d1;
        assert!(
            (2.0..8.0).contains(&ratio),
            "4× boxes should give roughly 4× devices, got {ratio:.2}×"
        );
    }

    #[test]
    fn boxes_stay_inside_the_region_plus_edge() {
        let p = BhhParams::paper(300, 3);
        let lib = ace_layout::Library::from_cif_text(&bhh_cif(&p)).unwrap();
        let bb = lib.bounding_box().expect("non-empty");
        assert!(bb.x_min >= 0 && bb.y_min >= 0);
        assert!(bb.x_max <= p.region_side() + p.edge);
        assert!(bb.y_max <= p.region_side() + p.edge);
    }
}
