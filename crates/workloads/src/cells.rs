//! Hand-designed NMOS leaf cells.
//!
//! All cells live in a local coordinate frame with their lower-left
//! at the origin and are designed on the λ = 250 centimicron grid so
//! the raster baselines extract them exactly.

use ace_cif::CifWriter;
use ace_geom::{Coord, Layer, Rect};

/// Footprint of [`write_inverter_cell`]: cells tile at this pitch,
/// with the power rails spanning the full width so abutting copies
/// share VDD and GND.
pub const INVERTER_PITCH: (Coord, Coord) = (2500, 5000);

/// Footprint of [`write_ram_cell`]: word lines (poly) span the full
/// width and bit lines (diffusion + metal) the full height, so a
/// tiled array is fully connected.
pub const RAM_PITCH: (Coord, Coord) = (2500, 2500);

/// Footprint of [`write_nand_cell`].
pub const NAND_PITCH: (Coord, Coord) = (3500, 5000);

/// Writes the canonical inverter (paper Figure 3-3 analogue) into the
/// writer's current symbol: an enhancement pull-down, a depletion
/// load with its gate strapped to the output by a buried contact, and
/// metal rails with contact cuts. Everything sits on the λ = 250
/// grid, so the raster baselines extract it exactly.
///
/// Emits exactly 10 boxes and, when extracted, 2 devices
/// (1 enhancement + 1 depletion, both 2λ × 2λ) on 4 nets. With
/// `chained`, output/input poly arms reach the cell edges so a row of
/// abutting cells forms an inverter chain (12 boxes).
pub fn write_inverter_cell(w: &mut CifWriter, chained: bool) -> usize {
    // Diffusion column.
    w.rect_on(Layer::Diffusion, Rect::new(1000, 500, 1500, 4500));
    // Enhancement gate bar (the input).
    w.rect_on(Layer::Poly, Rect::new(500, 1500, 2000, 2000));
    // Output strap: poly over diffusion under a buried contact, then
    // up to the depletion gate.
    w.rect_on(Layer::Poly, Rect::new(1000, 2250, 1500, 3250));
    // Depletion gate bar.
    w.rect_on(Layer::Poly, Rect::new(500, 3250, 2000, 3750));
    w.rect_on(Layer::Implant, Rect::new(250, 3000, 2250, 4000));
    w.rect_on(Layer::Buried, Rect::new(1000, 2250, 1500, 3250));
    // Rails and contacts; rails span the full pitch.
    w.rect_on(Layer::Metal, Rect::new(0, 4000, 2500, 4500));
    w.rect_on(Layer::Metal, Rect::new(0, 250, 2500, 750));
    w.rect_on(Layer::Cut, Rect::new(1000, 4000, 1250, 4250));
    w.rect_on(Layer::Cut, Rect::new(1000, 500, 1250, 750));
    let mut boxes = 10;
    if chained {
        // Output arm to the cell's right edge, plus an input arm from
        // the left edge down to the gate bar. Adjacent cells connect
        // purely by abutment, so cell bounding boxes never overlap
        // and the hierarchical extractor can window them separately.
        w.rect_on(Layer::Poly, Rect::new(1500, 2250, 2500, 2750));
        w.rect_on(Layer::Poly, Rect::new(0, 1750, 500, 2750));
        boxes += 2;
    }
    boxes
}

/// Writes a one-transistor RAM-style cell: a poly word line crossing
/// a diffusion stub, with a metal bit-line strap, contact, dummy
/// rail stubs, and decoration, for a realistic ≈10 boxes per device.
///
/// The word-line transistor sits between the bit line (the strapped
/// lower diffusion, shared per column through the metal) and an
/// isolated storage node above the gate — the diffusion deliberately
/// stops short of the cell top so stacked cells do not short their
/// storage nodes into the next cell's bit contact.
pub fn write_ram_cell(w: &mut CifWriter) -> usize {
    // Word line spans the full width.
    w.rect_on(Layer::Poly, Rect::new(0, 1000, 2500, 1500));
    // Diffusion: bit contact below the gate, storage node above it.
    w.rect_on(Layer::Diffusion, Rect::new(1000, 0, 1500, 2000));
    // Metal bit line, strapped to the diffusion below the word line.
    w.rect_on(Layer::Metal, Rect::new(750, 0, 1750, 2500));
    w.rect_on(Layer::Cut, Rect::new(1000, 250, 1250, 500));
    w.rect_on(Layer::Diffusion, Rect::new(750, 250, 1750, 750));
    // Rail stubs (abut the neighbours' stubs; intentionally broken at
    // the bit line).
    w.rect_on(Layer::Metal, Rect::new(0, 2000, 500, 2250));
    w.rect_on(Layer::Metal, Rect::new(2000, 2000, 2500, 2250));
    // Decoration away from the channel.
    w.rect_on(Layer::Implant, Rect::new(1750, 250, 2250, 750));
    w.rect_on(Layer::Glass, Rect::new(250, 250, 500, 500));
    w.rect_on(Layer::Glass, Rect::new(250, 1750, 750, 2000));
    10
}

/// Writes a two-input NAND-ish cell: two stacked enhancement
/// transistors in series plus a depletion load — 3 devices,
/// 14 boxes.
pub fn write_nand_cell(w: &mut CifWriter) -> usize {
    // Diffusion column with two gates crossing it.
    w.rect_on(Layer::Diffusion, Rect::new(1000, 500, 1500, 4500));
    // Input A and input B gate bars.
    w.rect_on(Layer::Poly, Rect::new(500, 1250, 2000, 1750));
    w.rect_on(Layer::Poly, Rect::new(500, 2250, 2000, 2750));
    // Load: strap + depletion gate.
    w.rect_on(Layer::Poly, Rect::new(1000, 3000, 1500, 3500));
    w.rect_on(Layer::Poly, Rect::new(500, 3500, 2000, 4000));
    w.rect_on(Layer::Implant, Rect::new(250, 3250, 2250, 4250));
    w.rect_on(Layer::Buried, Rect::new(1000, 3000, 1500, 3500));
    // Rails + cuts.
    w.rect_on(Layer::Metal, Rect::new(0, 4250, 3500, 4750));
    w.rect_on(Layer::Metal, Rect::new(0, 0, 3500, 500));
    w.rect_on(Layer::Cut, Rect::new(1000, 4250, 1250, 4500));
    w.rect_on(Layer::Cut, Rect::new(1000, 250, 1250, 500));
    // Bottom diffusion tail under the GND cut.
    w.rect_on(Layer::Diffusion, Rect::new(1000, 250, 1500, 500));
    // Output metal stub.
    w.rect_on(Layer::Metal, Rect::new(2250, 2750, 3250, 3000));
    // Decoration.
    w.rect_on(Layer::Glass, Rect::new(2500, 1000, 3000, 1500));
    14
}

/// The Figure 3-3 inverter as a standalone CIF chip, with VDD / GND /
/// OUT / INP labels.
///
/// # Examples
///
/// ```
/// use ace_workloads::cells::inverter_cif;
///
/// let lib = ace_layout::Library::from_cif_text(&inverter_cif())?;
/// assert_eq!(lib.instantiated_box_count(), 10);
/// # Ok::<(), ace_layout::BuildLayoutError>(())
/// ```
pub fn inverter_cif() -> String {
    let mut w = CifWriter::new();
    w.begin_symbol(1);
    w.cell_name("inverter");
    write_inverter_cell(&mut w, false);
    w.end_symbol();
    w.call(1, 0, 0);
    w.label("VDD", ace_geom::Point::new(500, 4250), Some(Layer::Metal));
    w.label("GND", ace_geom::Point::new(500, 500), Some(Layer::Metal));
    w.label("OUT", ace_geom::Point::new(1250, 2500), Some(Layer::Poly));
    w.label("INP", ace_geom::Point::new(750, 1750), Some(Layer::Poly));
    w.finish()
}

/// The HEXT Figure 2-1 workload: four chained inverters in a row,
/// sharing power rails, with IN/OUT/VDD/GND labels.
pub fn four_inverters_cif() -> String {
    chained_inverters_cif(4)
}

/// A row of `n` chained inverters (each stage's output drives the
/// next stage's input).
pub fn chained_inverters_cif(n: u32) -> String {
    let mut w = CifWriter::new();
    w.begin_symbol(1);
    w.cell_name("inv");
    write_inverter_cell(&mut w, true);
    w.end_symbol();
    for i in 0..n {
        w.call(1, i as i64 * INVERTER_PITCH.0, 0);
    }
    w.label("VDD", ace_geom::Point::new(100, 4250), Some(Layer::Metal));
    w.label("GND", ace_geom::Point::new(100, 500), Some(Layer::Metal));
    w.label("IN", ace_geom::Point::new(750, 1750), Some(Layer::Poly));
    let last = (n as i64 - 1) * INVERTER_PITCH.0;
    w.label(
        "OUT",
        ace_geom::Point::new(last + 1250, 2500),
        Some(Layer::Poly),
    );
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_core::{extract_text, ExtractOptions};
    use ace_wirelist::DeviceKind;

    #[test]
    fn inverter_cell_extracts_as_designed() {
        let r = extract_text(&inverter_cif(), ExtractOptions::new()).expect("extract");
        assert_eq!(r.netlist.device_census(), (1, 1, 0));
        let mut nl = r.netlist.clone();
        nl.prune_floating_nets();
        assert_eq!(nl.net_count(), 4);
        for name in ["VDD", "GND", "OUT", "INP"] {
            assert!(nl.net_by_name(name).is_some(), "missing {name}");
        }
        // The depletion gate is strapped to the output.
        let dep = nl
            .devices()
            .iter()
            .find(|d| d.kind == DeviceKind::Depletion)
            .expect("load");
        assert_eq!(Some(dep.gate), nl.net_by_name("OUT"));
    }

    #[test]
    fn chained_inverters_form_a_chain() {
        let r = extract_text(&chained_inverters_cif(4), ExtractOptions::new()).unwrap();
        assert_eq!(r.netlist.device_count(), 8);
        assert_eq!(r.netlist.device_census(), (4, 4, 0));
        let mut nl = r.netlist.clone();
        nl.prune_floating_nets();
        // Nets: vdd, gnd, in, 4 stage outputs = 7.
        assert_eq!(nl.net_count(), 7);
        let vdd = nl.net_by_name("VDD").unwrap();
        let deg = nl.net_degrees();
        assert_eq!(deg[vdd.0 as usize], 4); // all four loads
                                            // IN drives only the first gate.
        let inp = nl.net_by_name("IN").unwrap();
        assert_eq!(deg[inp.0 as usize], 1);
        // OUT is the last stage's output: dep gate+drain, enh source = 3.
        let out = nl.net_by_name("OUT").unwrap();
        assert_eq!(deg[out.0 as usize], 3);
    }

    #[test]
    fn shared_rails_merge_across_cells() {
        let r = extract_text(&four_inverters_cif(), ExtractOptions::new()).unwrap();
        let nl = &r.netlist;
        let vdd = nl.net_by_name("VDD").unwrap();
        // VDD net must span all four cells: bbox width ≥ 4 × pitch.
        let loc = nl.net(vdd).location.expect("location");
        assert_eq!(loc.x, 0);
    }

    #[test]
    fn ram_cell_is_one_transistor() {
        let mut w = CifWriter::new();
        w.begin_symbol(1);
        let boxes = write_ram_cell(&mut w);
        w.end_symbol();
        w.call(1, 0, 0);
        let cif = w.finish();
        let lib = ace_layout::Library::from_cif_text(&cif).unwrap();
        assert_eq!(lib.instantiated_box_count(), boxes as u64);
        let r = extract_text(&cif, ExtractOptions::new()).unwrap();
        assert_eq!(r.netlist.device_census(), (1, 0, 0));
    }

    #[test]
    fn ram_cells_tile_into_a_connected_array() {
        let mut w = CifWriter::new();
        w.begin_symbol(1);
        write_ram_cell(&mut w);
        w.end_symbol();
        for r in 0..2 {
            for c in 0..3 {
                w.call(1, c * RAM_PITCH.0, r * RAM_PITCH.1);
            }
        }
        let r = extract_text(&w.finish(), ExtractOptions::new()).unwrap();
        assert_eq!(r.netlist.device_count(), 6);
        assert_eq!(r.netlist.device_census(), (6, 0, 0));
        let deg = r.netlist.net_degrees();
        // Word lines gate 3 cells each (2 nets of degree 3).
        assert_eq!(deg.iter().filter(|&&d| d == 3).count(), 2);
        // Strapped bit columns carry one terminal per row (3 nets of
        // degree 2); storage nodes are isolated (6 nets of degree 1).
        assert_eq!(deg.iter().filter(|&&d| d == 2).count(), 3);
        assert_eq!(deg.iter().filter(|&&d| d == 1).count(), 6);
    }

    #[test]
    fn nand_cell_extracts_three_devices() {
        let mut w = CifWriter::new();
        w.begin_symbol(1);
        let boxes = write_nand_cell(&mut w);
        w.end_symbol();
        w.call(1, 0, 0);
        let cif = w.finish();
        let lib = ace_layout::Library::from_cif_text(&cif).unwrap();
        assert_eq!(lib.instantiated_box_count(), boxes as u64);
        let r = extract_text(&cif, ExtractOptions::new()).unwrap();
        assert_eq!(r.netlist.device_census(), (2, 1, 0));
    }
}
