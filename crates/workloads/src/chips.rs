//! Proxies for the seven benchmark chips of the papers' evaluations.
//!
//! The original ARPA-community CIF files are lost; these generators
//! reproduce each chip's *statistical shape*: published device count,
//! box count, and a regularity mix (testram was a regular memory
//! array; schip2 and psc were dominated by irregular data paths and
//! control). Regular structure is emitted as a hierarchical memory
//! array; irregular structure as flat rows of randomly chosen leaf
//! cells with random λ-grid gaps; remaining box budget becomes metal
//! routing in wiring channels.

use ace_cif::CifWriter;
use ace_geom::{Coord, Layer, Point, Rect, LAMBDA};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::cells::{
    write_inverter_cell, write_nand_cell, write_ram_cell, INVERTER_PITCH, NAND_PITCH, RAM_PITCH,
};

/// Generation parameters for one chip proxy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipSpec {
    /// Chip name as it appears in the paper's tables.
    pub name: &'static str,
    /// Published device count (Table 5-1).
    pub target_devices: u64,
    /// Published box count (Table 5-1, "# of Boxes").
    pub target_boxes: u64,
    /// Fraction of devices that live in the regular array.
    pub regularity: f64,
    /// PRNG seed.
    pub seed: u64,
}

impl ChipSpec {
    /// A proportionally smaller version of the same chip, for quick
    /// benchmarks. `scale` ∈ (0, 1].
    pub fn scaled(&self, scale: f64) -> ChipSpec {
        ChipSpec {
            target_devices: ((self.target_devices as f64 * scale) as u64).max(8),
            target_boxes: ((self.target_boxes as f64 * scale) as u64).max(64),
            ..*self
        }
    }
}

/// The seven chips of ACE Table 5-1, with regularity chosen per the
/// papers' descriptions (testram: "a regular memory array"; schip2 &
/// psc: "irregular structures like data paths and control").
pub const PAPER_CHIPS: [ChipSpec; 7] = [
    ChipSpec {
        name: "cherry",
        target_devices: 881,
        target_boxes: 7_400,
        regularity: 0.30,
        seed: 0xC0FFEE01,
    },
    ChipSpec {
        name: "dchip",
        target_devices: 4_884,
        target_boxes: 50_700,
        regularity: 0.60,
        seed: 0xC0FFEE02,
    },
    ChipSpec {
        name: "schip2",
        target_devices: 9_473,
        target_boxes: 109_000,
        regularity: 0.15,
        seed: 0xC0FFEE03,
    },
    ChipSpec {
        name: "testram",
        target_devices: 20_480,
        target_boxes: 196_900,
        regularity: 0.97,
        seed: 0xC0FFEE04,
    },
    ChipSpec {
        name: "psc",
        target_devices: 25_521,
        target_boxes: 251_500,
        regularity: 0.20,
        seed: 0xC0FFEE05,
    },
    ChipSpec {
        name: "scheme81",
        target_devices: 32_031,
        target_boxes: 418_300,
        regularity: 0.55,
        seed: 0xC0FFEE06,
    },
    ChipSpec {
        name: "riscb",
        target_devices: 42_084,
        target_boxes: 533_000,
        regularity: 0.75,
        seed: 0xC0FFEE07,
    },
];

/// Looks up a paper chip by name.
pub fn paper_chip(name: &str) -> Option<&'static ChipSpec> {
    PAPER_CHIPS.iter().find(|c| c.name == name)
}

/// A generated chip proxy.
#[derive(Debug, Clone)]
pub struct GeneratedChip {
    /// The spec it was generated from.
    pub spec: ChipSpec,
    /// CIF text.
    pub cif: String,
    /// Exact number of devices the layout contains.
    pub devices: u64,
    /// Exact number of boxes in the fully-instantiated layout.
    pub boxes: u64,
}

// Leaf-cell symbol ids.
const SYM_RAM: u32 = 1;
const SYM_RAM_ROW: u32 = 2;
const SYM_INVERTER: u32 = 3;
const SYM_NAND: u32 = 4;

/// Generates the chip proxy for a spec.
///
/// # Examples
///
/// ```
/// use ace_workloads::chips::{generate_chip, paper_chip};
///
/// let chip = generate_chip(&paper_chip("cherry").unwrap().scaled(0.1));
/// let lib = ace_layout::Library::from_cif_text(&chip.cif)?;
/// assert_eq!(lib.instantiated_box_count(), chip.boxes);
/// # Ok::<(), ace_layout::BuildLayoutError>(())
/// ```
pub fn generate_chip(spec: &ChipSpec) -> GeneratedChip {
    let mut rng = ChaCha8Rng::seed_from_u64(spec.seed);
    let mut w = CifWriter::new();
    let mut devices: u64 = 0;
    let mut boxes: u64 = 0;

    // Leaf-cell symbols.
    w.begin_symbol(SYM_RAM);
    w.cell_name("ramcell");
    let ram_boxes = write_ram_cell(&mut w) as u64;
    w.end_symbol();
    w.begin_symbol(SYM_INVERTER);
    w.cell_name("inv");
    let inv_boxes = write_inverter_cell(&mut w, false) as u64;
    w.end_symbol();
    w.begin_symbol(SYM_NAND);
    w.cell_name("nand");
    let nand_boxes = write_nand_cell(&mut w) as u64;
    w.end_symbol();

    // Regular part: a memory array above y = 0.
    let regular_devices = (spec.target_devices as f64 * spec.regularity) as u64;
    let mut array_width: Coord = 0;
    if regular_devices > 0 {
        let cols = (regular_devices as f64).sqrt().ceil() as u64;
        let rows = regular_devices.div_ceil(cols);
        w.begin_symbol(SYM_RAM_ROW);
        w.cell_name("ramrow");
        for c in 0..cols {
            w.call(SYM_RAM, c as i64 * RAM_PITCH.0, 0);
        }
        w.end_symbol();
        for r in 0..rows {
            w.call(SYM_RAM_ROW, 0, r as i64 * RAM_PITCH.1);
        }
        devices += rows * cols;
        boxes += rows * cols * ram_boxes;
        array_width = cols as i64 * RAM_PITCH.0;
    }

    // Irregular part: rows of random cells below y = 0, with random
    // λ-grid gaps. Each random row *pattern* is defined as a symbol
    // and instantiated `row_repeat` times before a new pattern is
    // drawn — real chips repeat their bit-slices, and the repeat
    // factor tracks the chip's overall regularity. Highly irregular
    // chips (schip2, psc) get unique rows.
    let row_pitch: Coord = 5750;
    let row_width: Coord = array_width.max(120 * LAMBDA);
    let row_repeat = 1 + (spec.regularity * 4.0) as u64;
    let mut y: Coord = -row_pitch;
    let mut wire_anchors: Vec<Coord> = Vec::new();
    let mut next_row_sym: u32 = 10;
    let mut pattern: Option<(u32, u64, u64)> = None; // (symbol, devices, boxes)
    let mut pattern_uses = 0u64;
    while devices < spec.target_devices {
        if pattern.is_none() || pattern_uses >= row_repeat {
            // Draw a fresh row pattern.
            let sym = next_row_sym;
            next_row_sym += 1;
            w.begin_symbol(sym);
            let mut x: Coord = 0;
            let mut row_devices = 0u64;
            let mut row_boxes = 0u64;
            while x < row_width {
                x += rng.gen_range(0..8) * LAMBDA;
                match rng.gen_range(0..3) {
                    0 => {
                        w.call(SYM_INVERTER, x, 0);
                        row_devices += 2;
                        row_boxes += inv_boxes;
                        x += INVERTER_PITCH.0;
                    }
                    1 => {
                        w.call(SYM_NAND, x, 0);
                        row_devices += 3;
                        row_boxes += nand_boxes;
                        x += NAND_PITCH.0;
                    }
                    _ => {
                        w.call(SYM_RAM, x, 0);
                        row_devices += 1;
                        row_boxes += ram_boxes;
                        x += RAM_PITCH.0;
                    }
                }
            }
            w.end_symbol();
            pattern = Some((sym, row_devices, row_boxes));
            pattern_uses = 0;
        }
        let (sym, row_devices, row_boxes) = pattern.expect("pattern just drawn");
        w.call(sym, 0, y);
        devices += row_devices;
        boxes += row_boxes;
        pattern_uses += 1;
        wire_anchors.push(y);
        y -= row_pitch;
    }

    // Wiring: metal tracks in the channels above each irregular row
    // (or above the array when there is no irregular part), spending
    // the remaining box budget.
    if wire_anchors.is_empty() {
        wire_anchors.push((regular_devices as f64).sqrt().ceil() as i64 * RAM_PITCH.1);
    }
    let mut anchor = 0usize;
    while boxes < spec.target_boxes {
        let base = wire_anchors[anchor % wire_anchors.len()];
        anchor += 1;
        // Track band y ∈ [base + 4750, base + 5500): clear of every
        // cell (max cell height 4750).
        let track = base + 4750 + rng.gen_range(0..3) * LAMBDA;
        let x0 = rng.gen_range(0..(row_width / LAMBDA).max(1)) * LAMBDA;
        let len = rng.gen_range(4..40) * LAMBDA;
        w.rect_on(Layer::Metal, Rect::new(x0, track, x0 + len, track + LAMBDA));
        boxes += 1;
    }

    // A few labels so label handling is exercised at scale.
    w.label("PHI1", Point::new(1000, 1000), Some(Layer::Poly));
    w.label("BIT0", Point::new(1000, 100), None);

    GeneratedChip {
        spec: *spec,
        cif: w.finish(),
        devices,
        boxes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_core::{extract_text, ExtractOptions};

    #[test]
    fn all_paper_chips_are_listed() {
        assert_eq!(PAPER_CHIPS.len(), 7);
        assert!(paper_chip("riscb").is_some());
        assert!(paper_chip("nope").is_none());
    }

    #[test]
    fn scaled_spec_shrinks_targets() {
        let s = paper_chip("riscb").unwrap().scaled(0.01);
        assert_eq!(s.target_devices, 420);
        assert!(s.target_boxes >= 5000);
    }

    #[test]
    fn generated_counts_are_exact() {
        let chip = generate_chip(&paper_chip("cherry").unwrap().scaled(0.2));
        let lib = ace_layout::Library::from_cif_text(&chip.cif).expect("valid CIF");
        assert_eq!(lib.instantiated_box_count(), chip.boxes);
        let r = extract_text(&chip.cif, ExtractOptions::new()).expect("extract");
        assert_eq!(
            r.netlist.device_count() as u64,
            chip.devices,
            "device count"
        );
        assert_eq!(r.report.boxes, chip.boxes);
    }

    #[test]
    fn device_and_box_targets_are_approximated() {
        let spec = paper_chip("dchip").unwrap().scaled(0.1);
        let chip = generate_chip(&spec);
        let dev_err =
            (chip.devices as f64 - spec.target_devices as f64) / spec.target_devices as f64;
        assert!(dev_err.abs() < 0.05, "device error {dev_err}");
        assert!(chip.boxes >= spec.target_boxes);
        let box_err = (chip.boxes as f64 - spec.target_boxes as f64) / spec.target_boxes as f64;
        assert!(box_err < 0.05, "box error {box_err}");
    }

    #[test]
    fn testram_is_almost_all_array() {
        let spec = paper_chip("testram").unwrap().scaled(0.05);
        let chip = generate_chip(&spec);
        let r = extract_text(&chip.cif, ExtractOptions::new()).expect("extract");
        // Nearly every device is the RAM cell's enhancement
        // transistor.
        let (enh, dep, cap) = r.netlist.device_census();
        assert!(
            dep < enh / 10,
            "testram should have few loads: {enh}/{dep}/{cap}"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = paper_chip("schip2").unwrap().scaled(0.02);
        assert_eq!(generate_chip(&spec).cif, generate_chip(&spec).cif);
    }

    #[test]
    fn labels_resolve_in_generated_chips() {
        let chip = generate_chip(&paper_chip("cherry").unwrap().scaled(0.1));
        let r = extract_text(&chip.cif, ExtractOptions::new()).expect("extract");
        // PHI1 sits at (1000,1000): inside the array region when the
        // regular part exists. It may fall on empty space for tiny
        // scales; just check the extraction didn't lose both.
        assert!(r.report.unresolved_labels <= 2);
    }
}
