//! Random layout-edit generator for incremental re-extraction.
//!
//! `ace_core`'s incremental extractor consumes [`LayoutDiff`] edits;
//! this module manufactures realistic ones — the kind an interactive
//! editing session produces — so the conformance harness and the
//! benches can drive an edit/re-extract loop against arbitrary
//! generated chips. An edit session picks random boxes and moves,
//! deletes, or duplicates them (the same repertoire the fuzzer's
//! layout-perturbation strategy uses), occasionally nudging a label;
//! deltas are λ-multiples so edited layouts stay λ-aligned like
//! everything else the workload crate emits.
//!
//! The diff is produced by mutating a scratch copy of the layout and
//! differencing ([`LayoutDiff::between`]), so successive edits
//! compose correctly — moving the same box twice yields one net
//! move, and a move that lands exactly on another edit's removal
//! cancels out.

use ace_geom::{Point, Rect, LAMBDA};
use ace_layout::{FlatLayout, LayoutDiff};
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Applies `count` random edit operations to a scratch copy of
/// `flat` and returns the resulting diff, drawing randomness from an
/// external generator (for strategy composition).
///
/// Each operation, on a uniformly chosen box: move by ±1..3λ in x
/// and/or y (60%), delete (15%, only while more than two boxes
/// remain), or duplicate at a λ offset (15%); the remaining 10%
/// moves a label by ±1λ when the layout has any. An empty layout
/// yields an empty diff.
pub fn random_edits_with(rng: &mut dyn RngCore, flat: &FlatLayout, count: usize) -> LayoutDiff {
    let mut edited = flat.clone();
    for _ in 0..count {
        edit_once(rng, &mut edited);
    }
    LayoutDiff::between(flat, &edited)
}

/// [`random_edits_with`] with a generator seeded from `seed`.
pub fn random_edits(flat: &FlatLayout, count: usize, seed: u64) -> LayoutDiff {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    random_edits_with(&mut rng, flat, count)
}

/// Edits `fraction` of the layout's boxes (at least one, when any
/// exist): the "re-extract after a 1% edit" workload.
pub fn edit_fraction(flat: &FlatLayout, fraction: f64, seed: u64) -> LayoutDiff {
    let boxes = flat.boxes().len();
    let count = ((boxes as f64 * fraction).ceil() as usize).clamp(usize::from(boxes > 0), boxes);
    random_edits(flat, count, seed)
}

/// Like [`random_edits`], but every operation lands in one region of
/// the chip: the candidate set is a contiguous run (by y) of about
/// `3 * count` boxes around a random focus.
///
/// [`random_edits`] scatters operations uniformly, which for a large
/// chip touches *every* band and legitimately invalidates the whole
/// incremental cache. An interactive editing session is not like
/// that — successive edits cluster in whatever cell the designer is
/// working on — and this generator models it, so it is what the
/// incremental re-extraction bench drives.
pub fn localized_edits(flat: &FlatLayout, count: usize, seed: u64) -> LayoutDiff {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    if flat.boxes().is_empty() || count == 0 {
        return LayoutDiff::new();
    }
    let mut order: Vec<usize> = (0..flat.boxes().len()).collect();
    order.sort_by_key(|&i| {
        let r = flat.boxes()[i].rect;
        (r.y_min + r.y_max, i)
    });
    let span = (count.saturating_mul(3)).clamp(1, order.len());
    let start = rng.gen_range(0..order.len() - span + 1);

    // Difference only the candidate slice: edits never name boxes
    // outside it, so the slice's before/after delta IS the diff.
    let mut before = FlatLayout::new();
    for &i in &order[start..start + span] {
        let b = flat.boxes()[i];
        before.push_box(b.layer, b.rect);
    }
    let mut after = before.clone();
    for _ in 0..count {
        edit_once(&mut rng, &mut after);
    }
    LayoutDiff::between(&before, &after)
}

/// [`localized_edits`] at an edit *fraction* of the box count.
pub fn localized_edit_fraction(flat: &FlatLayout, fraction: f64, seed: u64) -> LayoutDiff {
    let boxes = flat.boxes().len();
    let count = ((boxes as f64 * fraction).ceil() as usize).clamp(usize::from(boxes > 0), boxes);
    localized_edits(flat, count, seed)
}

fn lambda_delta(rng: &mut dyn RngCore) -> i64 {
    let d = rng.gen_range(1..4) * LAMBDA;
    if rng.gen_range(0..2) == 0 {
        d
    } else {
        -d
    }
}

fn edit_once(rng: &mut dyn RngCore, edited: &mut FlatLayout) {
    if edited.boxes().is_empty() {
        return;
    }
    let roll = rng.gen_range(0u32..100);
    if roll < 90 {
        let i = rng.gen_range(0..edited.boxes().len());
        let b = edited.boxes()[i];
        match roll {
            0..=59 => {
                // Move: shift in x, y, or both.
                let dx = if rng.gen_range(0..4) < 3 {
                    lambda_delta(rng)
                } else {
                    0
                };
                let dy = if dx == 0 || rng.gen_range(0..2) == 0 {
                    lambda_delta(rng)
                } else {
                    0
                };
                let moved = Rect::new(
                    b.rect.x_min + dx,
                    b.rect.y_min + dy,
                    b.rect.x_max + dx,
                    b.rect.y_max + dy,
                );
                edited.remove_box(b.layer, b.rect);
                edited.push_box(b.layer, moved);
            }
            60..=74 => {
                if edited.boxes().len() > 2 {
                    edited.remove_box(b.layer, b.rect);
                }
            }
            _ => {
                let dx = lambda_delta(rng);
                let dy = lambda_delta(rng);
                edited.push_box(
                    b.layer,
                    Rect::new(
                        b.rect.x_min + dx,
                        b.rect.y_min + dy,
                        b.rect.x_max + dx,
                        b.rect.y_max + dy,
                    ),
                );
            }
        }
    } else if !edited.labels().is_empty() {
        let i = rng.gen_range(0..edited.labels().len());
        let l = edited.labels()[i].clone();
        let at = Point::new(l.at.x + lambda_delta(rng), l.at.y);
        edited.remove_label(&l.name, l.at, l.layer);
        edited.push_label(l.name, at, l.layer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::soup::{soup_boxes, SoupParams};

    fn soup_layout(seed: u64) -> FlatLayout {
        let mut flat = FlatLayout::new();
        for (layer, rect) in soup_boxes(&SoupParams::new(40, seed)) {
            flat.push_box(layer, rect);
        }
        flat.push_label("a", Point::new(LAMBDA / 2, LAMBDA / 2), None);
        flat
    }

    #[test]
    fn deterministic_for_a_seed() {
        let flat = soup_layout(1);
        assert_eq!(random_edits(&flat, 8, 42), random_edits(&flat, 8, 42));
        assert_ne!(random_edits(&flat, 8, 42), random_edits(&flat, 8, 43));
    }

    #[test]
    fn edits_apply_cleanly() {
        let flat = soup_layout(2);
        for seed in 0..20 {
            let diff = random_edits(&flat, 10, seed);
            assert!(!diff.is_empty(), "10 ops should leave a net change");
            let mut patched = flat.clone();
            diff.apply_to(&mut patched).expect("diff applies to source");
        }
    }

    #[test]
    fn edits_stay_lambda_aligned() {
        let flat = soup_layout(3);
        let diff = random_edits(&flat, 25, 7);
        let mut patched = flat.clone();
        diff.apply_to(&mut patched).expect("applies");
        for b in patched.boxes() {
            for c in [b.rect.x_min, b.rect.y_min, b.rect.x_max, b.rect.y_max] {
                assert_eq!(c % LAMBDA, 0, "{c} off the λ grid");
            }
        }
    }

    #[test]
    fn localized_edits_cluster_and_apply() {
        let mut flat = FlatLayout::new();
        // A tall stack of wires: y spreads 0..100λ.
        for i in 0..100 {
            flat.push_box(
                ace_geom::Layer::Metal,
                Rect::new(0, i * 4 * LAMBDA, 8 * LAMBDA, (i * 4 + 2) * LAMBDA),
            );
        }
        for seed in 0..10 {
            let diff = localized_edits(&flat, 5, seed);
            assert!(!diff.is_empty());
            let mut patched = flat.clone();
            diff.apply_to(&mut patched).expect("applies to the source");
            // All touched geometry sits inside one ~2·(15 boxes)·4λ
            // window plus the ±3λ op delta.
            let ys: Vec<i64> = diff
                .boxes_added
                .iter()
                .chain(diff.boxes_removed.iter())
                .flat_map(|b| [b.rect.y_min, b.rect.y_max])
                .collect();
            let spread = ys.iter().max().unwrap() - ys.iter().min().unwrap();
            assert!(
                spread <= 70 * LAMBDA,
                "edit spread {spread} exceeds the candidate window"
            );
        }
    }

    #[test]
    fn fraction_scales_with_box_count() {
        let flat = soup_layout(4);
        assert!(!edit_fraction(&flat, 0.1, 5).is_empty());
        // At least one edit even for tiny fractions.
        assert!(!edit_fraction(&flat, 1e-9, 5).is_empty());
        // Empty layouts yield empty diffs.
        assert!(edit_fraction(&FlatLayout::new(), 0.5, 5).is_empty());
    }
}
