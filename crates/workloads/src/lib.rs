//! Synthetic NMOS layout generators for the ACE/HEXT evaluation.
//!
//! The chips the papers were measured on (cherry, dchip, schip2,
//! testram, psc, scheme81, riscb) were ARPA-community designs whose
//! CIF sources are lost. This crate regenerates the *statistical
//! structure* that drives extractor behaviour:
//!
//! * [`cells`] — hand-placed leaf cells: the canonical inverter
//!   (paper Figure 3-3), a chained variant, a one-transistor RAM
//!   cell, and a three-transistor NAND.
//! * [`mesh`] — the worst-case N×N poly/diffusion mesh from the §4
//!   complexity analysis ("N horizontal poly lines intersect N
//!   vertical diffusion lines, forming a mesh with N² transistors").
//! * [`bhh`] — the Bentley–Haken–Hon random-square model used for the
//!   paper's expected-time analysis: "the N rectangles are squares
//!   with edge length 7.6λ, uniformly distributed over a region
//!   [0.8N^{1/2}λ]²".
//! * [mod@array] — regular arrays: the HEXT Table 4-1 square array
//!   built as a complete binary tree of symbols, and a testram-style
//!   word/bit-line memory array.
//! * [`chips`] — proxies for the seven benchmark chips, mixing a
//!   regular array with irregular random logic and wiring to match
//!   each chip's published device count, box count, and regularity.
//! * [`soup`] — composable λ-aligned random-layout building blocks
//!   (box soups, overlay and labeling combinators) for the
//!   differential conformance harness.
//! * [`edits`] — random layout-edit sessions emitting
//!   [`ace_layout::LayoutDiff`]s, for driving the incremental
//!   extractor's edit/re-extract loop.
//! * [`violations`] — minimal layouts that each trip exactly one
//!   `ace_lint` ERC rule, keyed by rule name.
//!
//! All generators emit CIF text, so every workload exercises the full
//! pipeline (parser → front-end → back-end).
//!
//! # Examples
//!
//! ```
//! use ace_workloads::{cells, mesh};
//!
//! let inv = cells::inverter_cif();
//! let lib = ace_layout::Library::from_cif_text(&inv)?;
//! assert_eq!(lib.instantiated_box_count(), 10);
//!
//! let worst = mesh::mesh_cif(4); // 4×4 = 16 transistors
//! assert!(worst.contains("L NP;"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

pub mod array;
pub mod bhh;
pub mod cells;
pub mod chips;
pub mod edits;
pub mod mesh;
pub mod soup;
pub mod violations;
