//! The worst-case mesh from the paper's §4 complexity analysis.
//!
//! "The worst case occurs when N horizontal poly lines intersect N
//! vertical diffusion lines, forming a mesh with N² transistors.
//! Since each of the N² transistors has to be found by the extractor,
//! the complexity is at least N²."

use ace_cif::CifWriter;
use ace_geom::{Coord, Layer, Rect};

/// Line width of the mesh bars (2λ).
pub const MESH_LINE: Coord = 500;
/// Pitch between mesh bars (4λ).
pub const MESH_PITCH: Coord = 1000;

/// Generates the worst-case mesh: `n` horizontal poly bars crossing
/// `n` vertical diffusion bars — `2n` boxes, `n²` transistors.
///
/// # Examples
///
/// ```
/// use ace_core::{extract_text, ExtractOptions};
/// use ace_workloads::mesh::mesh_cif;
///
/// let r = extract_text(&mesh_cif(4), ExtractOptions::new())?;
/// assert_eq!(r.netlist.device_count(), 16);
/// # Ok::<(), ace_core::ExtractError>(())
/// ```
pub fn mesh_cif(n: u32) -> String {
    let n = n as Coord;
    let extent = n * MESH_PITCH;
    let mut w = CifWriter::new();
    for i in 0..n {
        let y = i * MESH_PITCH;
        w.rect_on(
            Layer::Poly,
            Rect::new(-MESH_PITCH, y, extent, y + MESH_LINE),
        );
    }
    for i in 0..n {
        let x = i * MESH_PITCH;
        w.rect_on(
            Layer::Diffusion,
            Rect::new(x, -MESH_PITCH, x + MESH_LINE, extent),
        );
    }
    w.finish()
}

/// Number of boxes [`mesh_cif`] emits.
pub fn mesh_box_count(n: u32) -> u64 {
    2 * n as u64
}

/// Number of transistors the mesh contains.
pub fn mesh_device_count(n: u32) -> u64 {
    n as u64 * n as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_core::{extract_text, ExtractOptions};

    #[test]
    fn mesh_counts_are_quadratic() {
        for n in [1u32, 2, 5, 8] {
            let r = extract_text(&mesh_cif(n), ExtractOptions::new()).expect("extract");
            assert_eq!(
                r.netlist.device_count() as u64,
                mesh_device_count(n),
                "n={n}"
            );
            assert_eq!(r.report.boxes, mesh_box_count(n), "n={n}");
        }
    }

    #[test]
    fn mesh_nets_partition_correctly() {
        // n poly bars = n gate nets; each diffusion column is cut into
        // n+1 segments → n(n+1) diffusion nets.
        let n = 4u32;
        let r = extract_text(&mesh_cif(n), ExtractOptions::new()).unwrap();
        let mut nl = r.netlist.clone();
        nl.prune_floating_nets();
        let n64 = n as usize;
        assert_eq!(nl.net_count(), n64 + n64 * (n64 + 1));
    }

    #[test]
    fn mesh_devices_have_uniform_dimensions() {
        let r = extract_text(&mesh_cif(3), ExtractOptions::new()).unwrap();
        for d in r.netlist.devices() {
            assert_eq!(d.length, MESH_LINE, "{d:?}");
            assert_eq!(d.width, MESH_LINE, "{d:?}");
        }
    }
}
