//! Composable λ-aligned random-layout building blocks.
//!
//! The differential conformance harness (`ace_conformance`) needs
//! random layouts that every backend is *expected* to agree on, which
//! in this reproduction means λ-aligned boxes: the raster baselines
//! snap box edges outward to the λ grid, so unaligned geometry is
//! extracted conservatively by them and exactly by the scanline — a
//! known, documented difference rather than a bug. The generators
//! here therefore emit only λ-multiple coordinates and extents.
//!
//! Three kinds of building block:
//!
//! * [`soup_cif`] / [`soup_boxes`] — the "box soup": uniformly random
//!   λ-aligned rectangles over all six mask layers, the workhorse of
//!   the fuzzer (mirrors the strategy in `tests/proptests.rs`).
//! * [`overlay_flat_cif`] — a combinator: flatten two CIF files and
//!   superimpose them at a λ-aligned offset, so strategies compose
//!   (soup over a mesh fragment, soup over a perturbed leaf cell, …).
//! * [`label_sites`] / [`with_labels`] — CIF `94` label support:
//!   [`label_sites`] finds points where *every* backend resolves a
//!   label to the same net (strictly inside a conducting box, off the
//!   λ grid so no backend can disagree about which side of an edge
//!   the point is on, and not over a transistor channel), and
//!   [`with_labels`] splices the chosen labels into an existing CIF
//!   text.

use ace_cif::CifWriter;
use ace_geom::{Layer, Point, Rect, LAMBDA};
use ace_layout::{BuildLayoutError, FlatLayout, Library};
use rand::distributions::{Distribution, WeightedIndex};
use rand::{Rng, RngCore};
use rand_chacha::ChaCha8Rng;

use rand::SeedableRng;

/// The six mask layers a soup draws from, in weight order.
pub const SOUP_LAYERS: [Layer; 6] = [
    Layer::Diffusion,
    Layer::Poly,
    Layer::Metal,
    Layer::Cut,
    Layer::Implant,
    Layer::Buried,
];

/// Parameters of a λ-aligned box soup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoupParams {
    /// Number of boxes.
    pub boxes: u32,
    /// Placement region side, in λ (boxes start inside it).
    pub region: u32,
    /// Maximum box extent, in λ (minimum is 1λ).
    pub max_extent: u32,
    /// Per-layer weights, indexed like [`SOUP_LAYERS`].
    pub weights: [u32; 6],
    /// PRNG seed (used by [`soup_cif`]; [`soup_boxes_with`] takes an
    /// external generator instead).
    pub seed: u64,
}

impl SoupParams {
    /// A dense soup of `boxes` boxes with NMOS-typical layer weights.
    pub fn new(boxes: u32, seed: u64) -> Self {
        SoupParams {
            boxes,
            region: 24,
            max_extent: 8,
            weights: [30, 30, 20, 8, 7, 5],
            seed,
        }
    }

    /// Replaces the placement region side (λ).
    pub fn with_region(mut self, region: u32) -> Self {
        self.region = region.max(1);
        self
    }

    /// Replaces the maximum box extent (λ).
    pub fn with_max_extent(mut self, max_extent: u32) -> Self {
        self.max_extent = max_extent.max(1);
        self
    }
}

/// Draws the soup's boxes from an external generator (for strategy
/// composition; `params.seed` is ignored).
pub fn soup_boxes_with(rng: &mut dyn RngCore, params: &SoupParams) -> Vec<(Layer, Rect)> {
    let pick = WeightedIndex::new(params.weights).expect("static positive weights");
    let region = params.region.max(1) as i64;
    let max_extent = params.max_extent.max(1) as i64;
    (0..params.boxes)
        .map(|_| {
            let layer = SOUP_LAYERS[pick.sample(rng)];
            let x = rng.gen_range(0..region) * LAMBDA;
            let y = rng.gen_range(0..region) * LAMBDA;
            let w = rng.gen_range(1..max_extent + 1) * LAMBDA;
            let h = rng.gen_range(1..max_extent + 1) * LAMBDA;
            (layer, Rect::new(x, y, x + w, y + h))
        })
        .collect()
}

/// Draws the soup's boxes with a generator seeded from `params.seed`.
pub fn soup_boxes(params: &SoupParams) -> Vec<(Layer, Rect)> {
    let mut rng = ChaCha8Rng::seed_from_u64(params.seed);
    soup_boxes_with(&mut rng, params)
}

/// Generates the soup as CIF text.
///
/// # Examples
///
/// ```
/// use ace_workloads::soup::{soup_cif, SoupParams};
///
/// let cif = soup_cif(&SoupParams::new(12, 7));
/// let lib = ace_layout::Library::from_cif_text(&cif)?;
/// assert_eq!(lib.instantiated_box_count(), 12);
/// # Ok::<(), ace_layout::BuildLayoutError>(())
/// ```
pub fn soup_cif(params: &SoupParams) -> String {
    boxes_to_cif(&soup_boxes(params))
}

/// Serializes a flat box list as CIF text.
pub fn boxes_to_cif(boxes: &[(Layer, Rect)]) -> String {
    let mut w = CifWriter::new();
    for &(layer, rect) in boxes {
        w.rect_on(layer, rect);
    }
    w.finish()
}

/// Serializes a flat layout (boxes and labels) as CIF text.
///
/// This is the "flatten symbols" operation of the conformance
/// shrinker: hierarchy is lost, geometry and labels are preserved in
/// absolute coordinates.
pub fn flat_to_cif(flat: &FlatLayout) -> String {
    let mut w = CifWriter::new();
    for b in flat.boxes() {
        w.rect_on(b.layer, b.rect);
    }
    for l in flat.labels() {
        w.label(&l.name, l.at, l.layer);
    }
    w.finish()
}

/// Flattens two CIF files and superimposes them, translating the
/// second by `offset` (a λ-aligned point keeps the result λ-aligned).
///
/// # Errors
///
/// Propagates parse/build errors from either input.
pub fn overlay_flat_cif(a: &str, b: &str, offset: Point) -> Result<String, BuildLayoutError> {
    let fa = FlatLayout::from_library(&Library::from_cif_text(a)?);
    let fb = FlatLayout::from_library(&Library::from_cif_text(b)?);
    let mut w = CifWriter::new();
    for bx in fa.boxes() {
        w.rect_on(bx.layer, bx.rect);
    }
    for bx in fb.boxes() {
        w.rect_on(bx.layer, bx.rect.translate(offset));
    }
    for l in fa.labels() {
        w.label(&l.name, l.at, l.layer);
    }
    for l in fb.labels() {
        w.label(
            &l.name,
            Point::new(l.at.x + offset.x, l.at.y + offset.y),
            l.layer,
        );
    }
    Ok(w.finish())
}

/// Points where a CIF `94` label resolves identically in every
/// backend, sorted and deduplicated (so the result is invariant under
/// box reordering).
///
/// A site is the lower-left interior point `(x_min + λ/2, y_min +
/// λ/2)` of a conducting box. Sitting half a λ off the grid, it can
/// never lie on a box edge of a λ-aligned layout, so open/closed
/// containment conventions cannot disagree. Diffusion and poly sites
/// are rejected when the other device layer also covers the point
/// (the label would name a transistor channel, which is not a net —
/// backends legitimately differ on unresolvable labels).
pub fn label_sites(flat: &FlatLayout, limit: usize) -> Vec<(Point, Layer)> {
    let mut sites: Vec<(Point, Layer)> = Vec::new();
    for b in flat.boxes() {
        if !b.layer.is_conducting() {
            continue;
        }
        if b.rect.width() < LAMBDA || b.rect.height() < LAMBDA {
            continue;
        }
        let p = Point::new(b.rect.x_min + LAMBDA / 2, b.rect.y_min + LAMBDA / 2);
        let covered = |layer: Layer| {
            flat.boxes()
                .iter()
                .any(|o| o.layer == layer && o.rect.contains_point(p))
        };
        let channelish = match b.layer {
            Layer::Diffusion => covered(Layer::Poly),
            Layer::Poly => covered(Layer::Diffusion),
            _ => false,
        };
        if !channelish {
            sites.push((p, b.layer));
        }
    }
    sites.sort();
    sites.dedup();
    sites.truncate(limit);
    sites
}

/// Splices `94` labels into an existing CIF text (before the final
/// `E` marker).
///
/// # Panics
///
/// Panics if `cif` does not end with the `E` end marker.
pub fn with_labels(cif: &str, labels: &[(String, Point, Layer)]) -> String {
    let body = cif
        .trim_end()
        .strip_suffix('E')
        .expect("CIF text must end with the E marker");
    let mut out = String::from(body);
    for (name, at, layer) in labels {
        out.push_str(&format!(
            "94 {name} {} {} {};\n",
            at.x,
            at.y,
            layer.cif_name()
        ));
    }
    out.push_str("E\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soup_is_deterministic_and_aligned() {
        let p = SoupParams::new(30, 11);
        assert_eq!(soup_cif(&p), soup_cif(&p));
        let q = SoupParams::new(30, 12);
        assert_ne!(soup_cif(&p), soup_cif(&q));
        for (_, r) in soup_boxes(&p) {
            for c in [r.x_min, r.y_min, r.x_max, r.y_max] {
                assert_eq!(c % LAMBDA, 0, "{r} not λ-aligned");
            }
            assert!(!r.is_empty());
        }
    }

    #[test]
    fn overlay_preserves_both_inputs() {
        let a = soup_cif(&SoupParams::new(5, 1));
        let b = soup_cif(&SoupParams::new(7, 2));
        let merged = overlay_flat_cif(&a, &b, Point::new(4 * LAMBDA, -2 * LAMBDA)).unwrap();
        let lib = Library::from_cif_text(&merged).unwrap();
        assert_eq!(lib.instantiated_box_count(), 12);
    }

    #[test]
    fn label_sites_avoid_channels_and_edges() {
        // Poly crosses diffusion: the diffusion site below the gate
        // is fine, the crossing itself must never be offered.
        let mut flat = FlatLayout::new();
        flat.push_box(Layer::Diffusion, Rect::new(0, 0, LAMBDA, 6 * LAMBDA));
        flat.push_box(Layer::Poly, Rect::new(-LAMBDA, 0, 2 * LAMBDA, LAMBDA));
        let sites = label_sites(&flat, 8);
        for (p, layer) in &sites {
            assert_eq!((p.x - LAMBDA / 2) % LAMBDA, 0);
            assert_eq!((p.y - LAMBDA / 2) % LAMBDA, 0);
            if *layer == Layer::Diffusion {
                assert!(p.y > LAMBDA, "diffusion site {p} is under the poly gate");
            }
        }
        assert!(!sites.is_empty());
    }

    #[test]
    fn with_labels_round_trips_through_the_parser() {
        let cif = soup_cif(&SoupParams::new(6, 3));
        let flat = FlatLayout::from_library(&Library::from_cif_text(&cif).unwrap());
        let sites = label_sites(&flat, 2);
        let labels: Vec<(String, Point, Layer)> = sites
            .iter()
            .enumerate()
            .map(|(i, &(at, layer))| (format!("n{i}"), at, layer))
            .collect();
        let labeled = with_labels(&cif, &labels);
        let lib = Library::from_cif_text(&labeled).unwrap();
        let flat = FlatLayout::from_library(&lib);
        assert_eq!(flat.labels().len(), labels.len());
    }
}
