//! Minimal layouts that each violate exactly one ERC rule.
//!
//! One generator per `ace_lint` rule, each producing the smallest
//! λ-aligned layout that trips *only* that rule — the lint engine's
//! positive test corpus. The rule names in [`all`] match
//! `ace_lint::RuleId::name()`; the pairing is pinned by the golden
//! snapshot tests in `crates/lint` (this crate cannot depend on
//! `ace_lint` — the dependency runs the other way).
//!
//! The shared building block is a vertical 2λ diffusion strip crossed
//! by a horizontal 2λ poly bar: a single enhancement transistor with
//! a 500 × 500 channel at (0, 750)–(500, 1250).

use ace_cif::CifWriter;
use ace_geom::{Layer, Point, Rect};

/// The transistor body shared by several generators: diffusion column
/// and poly gate bar, channel W = L = 2λ.
fn write_transistor(w: &mut CifWriter) {
    w.rect_on(Layer::Diffusion, Rect::new(0, 0, 500, 2000));
    w.rect_on(Layer::Poly, Rect::new(0, 750, 1500, 1250));
}

/// `floating-gate`: the source and drain are labeled, but the gate
/// poly carries no label and connects to nothing else.
pub fn floating_gate_cif() -> String {
    let mut w = CifWriter::new();
    write_transistor(&mut w);
    w.label("A", Point::new(250, 250), Some(Layer::Diffusion));
    w.label("B", Point::new(250, 1750), Some(Layer::Diffusion));
    w.finish()
}

/// `supply-short`: one metal strap labeled `VDD!` at one end and
/// `GND!` at the other — both rails on a single electrical net.
pub fn supply_short_cif() -> String {
    let mut w = CifWriter::new();
    w.rect_on(Layer::Metal, Rect::new(0, 0, 2000, 500));
    w.label("VDD!", Point::new(250, 250), Some(Layer::Metal));
    w.label("GND!", Point::new(1750, 250), Some(Layer::Metal));
    w.finish()
}

/// `undriven-net`: gate and top terminal are labeled; the bottom
/// diffusion stub is an unnamed dead end.
pub fn undriven_net_cif() -> String {
    let mut w = CifWriter::new();
    write_transistor(&mut w);
    w.label("IN", Point::new(1250, 1000), Some(Layer::Poly));
    w.label("OUT", Point::new(250, 1750), Some(Layer::Diffusion));
    w.finish()
}

/// `zero-wl-device`: a 1λ-wide diffusion strip makes the channel
/// W = 250, below the 2λ = 500 minimum feature size.
pub fn zero_wl_device_cif() -> String {
    let mut w = CifWriter::new();
    w.rect_on(Layer::Diffusion, Rect::new(0, 0, 250, 2000));
    w.rect_on(Layer::Poly, Rect::new(0, 750, 1500, 1250));
    w.label("G", Point::new(1250, 1000), Some(Layer::Poly));
    w.label("A", Point::new(125, 250), Some(Layer::Diffusion));
    w.label("B", Point::new(125, 1750), Some(Layer::Diffusion));
    w.finish()
}

/// `dangling-cut`: a contact cut sitting on metal alone — there is no
/// second conducting layer for it to bridge.
pub fn dangling_cut_cif() -> String {
    let mut w = CifWriter::new();
    w.rect_on(Layer::Metal, Rect::new(0, 0, 1000, 500));
    w.rect_on(Layer::Cut, Rect::new(250, 250, 500, 500));
    w.label("M", Point::new(875, 250), Some(Layer::Metal));
    w.finish()
}

/// `depletion-pullup`: an implant makes the transistor
/// depletion-mode, but its gate ties to neither terminal — not the
/// standard gate-tied pullup.
pub fn depletion_pullup_cif() -> String {
    let mut w = CifWriter::new();
    write_transistor(&mut w);
    w.rect_on(Layer::Implant, Rect::new(0, 500, 1000, 1500));
    w.label("G", Point::new(1250, 1000), Some(Layer::Poly));
    w.label("S", Point::new(250, 250), Some(Layer::Diffusion));
    w.label("D", Point::new(250, 1750), Some(Layer::Diffusion));
    w.finish()
}

/// `conflicting-labels`: two disconnected metal islands both labeled
/// `X`.
pub fn conflicting_labels_cif() -> String {
    let mut w = CifWriter::new();
    w.rect_on(Layer::Metal, Rect::new(0, 0, 500, 500));
    w.rect_on(Layer::Metal, Rect::new(1500, 0, 2000, 500));
    w.label("X", Point::new(250, 250), Some(Layer::Metal));
    w.label("X", Point::new(1750, 250), Some(Layer::Metal));
    w.finish()
}

/// `overloaded-net`: a fully-labeled minimum transistor whose drain
/// diffusion climbs through a contact onto a 160λ × 160λ metal plate
/// (≈ 0.8 pF) — far more wire than a W/L = 1 channel can charge.
pub fn overloaded_net_cif() -> String {
    let mut w = CifWriter::new();
    write_transistor(&mut w);
    w.rect_on(Layer::Cut, Rect::new(250, 1750, 500, 2000));
    w.rect_on(Layer::Metal, Rect::new(250, 1750, 40250, 41750));
    w.label("G", Point::new(1250, 1000), Some(Layer::Poly));
    w.label("S", Point::new(250, 250), Some(Layer::Diffusion));
    w.label("OUT", Point::new(250, 1500), Some(Layer::Diffusion));
    w.finish()
}

/// Every violation layout, keyed by the `ace_lint` rule name it
/// (alone) triggers.
pub fn all() -> Vec<(&'static str, String)> {
    vec![
        ("floating-gate", floating_gate_cif()),
        ("supply-short", supply_short_cif()),
        ("undriven-net", undriven_net_cif()),
        ("zero-wl-device", zero_wl_device_cif()),
        ("dangling-cut", dangling_cut_cif()),
        ("depletion-pullup", depletion_pullup_cif()),
        ("conflicting-labels", conflicting_labels_cif()),
        ("overloaded-net", overloaded_net_cif()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_core::ExtractOptions;
    use ace_layout::Library;

    #[test]
    fn every_violation_layout_extracts() {
        for (rule, cif) in all() {
            let lib = Library::from_cif_text(&cif)
                .unwrap_or_else(|e| panic!("{rule}: parse failed: {e}"));
            ace_core::extract_library(&lib, rule, ExtractOptions::default())
                .unwrap_or_else(|e| panic!("{rule}: extract failed: {e}"));
        }
    }

    #[test]
    fn device_counts_match_the_stories() {
        let device_count = |cif: &str| {
            let lib = Library::from_cif_text(cif).unwrap();
            ace_core::extract_library(&lib, "v", ExtractOptions::default())
                .unwrap()
                .netlist
                .device_count()
        };
        assert_eq!(device_count(&floating_gate_cif()), 1);
        assert_eq!(device_count(&supply_short_cif()), 0);
        assert_eq!(device_count(&zero_wl_device_cif()), 1);
        assert_eq!(device_count(&depletion_pullup_cif()), 1);
        assert_eq!(device_count(&conflicting_labels_cif()), 0);
    }
}
