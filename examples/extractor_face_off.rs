//! Every extraction backend behind the one [`CircuitExtractor`]
//! trait, racing on the same chip: the flat scanline sweep, the
//! band-parallel sweep, the hierarchical window/compose extractor,
//! and the two raster baselines ACE displaced (Partlist, Cifplot).
//! All five must produce the same circuit; only the work differs.
//!
//! Run with `cargo run --release --example extractor_face_off [scale]`.

use std::time::{Duration, Instant};

use ace::prelude::*;
use ace::wirelist::compare::structural_signature;
use ace::workloads::chips::{generate_chip, paper_chip};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);
    let spec = paper_chip("cherry").expect("spec").scaled(scale);
    let chip = generate_chip(&spec);
    let lib = Library::from_cif_text(&chip.cif)?;
    let flat = FlatLayout::from_library(&lib);
    println!("chip: {} boxes, {} devices\n", chip.boxes, chip.devices);

    let mut backends: Vec<Box<dyn CircuitExtractor>> = vec![
        Box::new(FlatExtractor::new(flat.clone())),
        Box::new(FlatExtractor::banded(flat.clone(), 4)),
        Box::new(HierarchicalExtractor::new(lib.clone())),
        Box::new(PartlistExtractor::new(flat.clone(), LAMBDA)),
        Box::new(CifplotExtractor::new(flat, LAMBDA)),
    ];

    let mut signature: Option<u64> = None;
    let mut times: Vec<(&'static str, Duration)> = Vec::new();
    for b in &mut backends {
        // Best of three runs each, so one-shot allocator noise does
        // not drown the algorithmic difference.
        let mut best = Duration::MAX;
        let mut result = None;
        for _ in 0..3 {
            let t0 = Instant::now();
            result = Some(b.extract("cherry")?);
            best = best.min(t0.elapsed());
        }
        let r = result.expect("three runs");
        println!(
            "{:<10} {best:>12.3?}  — {} devices, {} boxes",
            b.backend(),
            r.netlist.device_count(),
            r.report.boxes,
        );

        // Agreement: identical circuits from independent algorithms.
        let sig = structural_signature(&r.netlist);
        match signature {
            None => signature = Some(sig),
            Some(reference) => assert_eq!(sig, reference, "{} disagrees", b.backend()),
        }
        times.push((b.backend(), best));
    }

    println!(
        "\nall {} backends agree: structural signature {:#018x}",
        times.len(),
        signature.expect("at least one backend"),
    );
    let ace_t = times[0].1.as_secs_f64();
    for (name, t) in &times[1..] {
        let ratio = t.as_secs_f64() / ace_t;
        if ratio >= 1.0 {
            println!("ace-flat is {ratio:.1}x faster than {name}");
        } else {
            println!("{name} is {:.1}x faster than ace-flat", 1.0 / ratio);
        }
    }
    Ok(())
}
