//! ACE vs the baselines it displaced: the run-encoded raster scanner
//! (Partlist) and the full-grid analyzer (Cifplot), on the same chip.
//! All three must produce the same circuit; only the work differs.
//!
//! Run with `cargo run --release --example extractor_face_off [scale]`.

use std::time::Instant;

use ace::core::{extract_library, ExtractOptions};
use ace::geom::LAMBDA;
use ace::layout::{FlatLayout, Library};
use ace::raster::{extract_cifplot, extract_partlist};
use ace::wirelist::compare::structural_signature;
use ace::workloads::chips::{generate_chip, paper_chip};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);
    let spec = paper_chip("cherry").expect("spec").scaled(scale);
    let chip = generate_chip(&spec);
    let lib = Library::from_cif_text(&chip.cif)?;
    let flat = FlatLayout::from_library(&lib);
    println!("chip: {} boxes, {} devices\n", chip.boxes, chip.devices);

    // Best of three runs each, so one-shot allocator noise does not
    // drown the algorithmic difference.
    let best = |f: &dyn Fn()| {
        (0..3)
            .map(|_| {
                let t0 = Instant::now();
                f();
                t0.elapsed()
            })
            .min()
            .expect("three runs")
    };
    let ace = extract_library(&lib, "cherry", ExtractOptions::new());
    let t_ace = best(&|| {
        let _ = extract_library(&lib, "cherry", ExtractOptions::new());
    });
    println!(
        "ACE (edge-based):        {t_ace:?}  — {} scanline stops",
        ace.report.scanline_stops
    );

    let partlist = extract_partlist(&flat, "cherry", LAMBDA);
    let t_part = best(&|| {
        let _ = extract_partlist(&flat, "cherry", LAMBDA);
    });
    println!(
        "Partlist (run-encoded):  {t_part:?}  — {} rows, {} runs visited",
        partlist.report.rows, partlist.report.runs_visited
    );

    let cifplot = extract_cifplot(&flat, "cherry", LAMBDA);
    let t_cif = best(&|| {
        let _ = extract_cifplot(&flat, "cherry", LAMBDA);
    });
    println!(
        "Cifplot (full grid):     {t_cif:?}  — {} cells visited",
        cifplot.report.cells_visited
    );

    // Agreement: identical circuits from three independent
    // algorithms.
    let sig = structural_signature(&ace.netlist);
    assert_eq!(
        sig,
        structural_signature(&partlist.netlist),
        "partlist disagrees"
    );
    assert_eq!(
        sig,
        structural_signature(&cifplot.netlist),
        "cifplot disagrees"
    );
    println!(
        "\nall three extractors agree: {} devices, structural signature {sig:#018x}",
        ace.netlist.device_count()
    );
    println!(
        "speedups: ACE is {:.1}x faster than Partlist, {:.1}x faster than Cifplot",
        t_part.as_secs_f64() / t_ace.as_secs_f64(),
        t_cif.as_secs_f64() / t_ace.as_secs_f64()
    );
    Ok(())
}
