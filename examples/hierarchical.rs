//! The HEXT paper's running example: four inverters (Figure 2-1)
//! extracted hierarchically into a hierarchical wirelist
//! (Figure 2-2), then flattened and cross-checked against the flat
//! extractor.
//!
//! Run with `cargo run --example hierarchical`.

use ace::core::{extract_library, ExtractOptions};
use ace::hext::extract_hierarchical;
use ace::layout::Library;
use ace::wirelist::{compare, write_hier_wirelist};
use ace::workloads::cells::four_inverters_cif;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cif = four_inverters_cif();
    let lib = Library::from_cif_text(&cif)?;

    // Hierarchical extraction: windows, interfaces, compose.
    let hext = extract_hierarchical(&lib, "four-inverters");
    println!("--- hierarchical wirelist (Figure 2-2 format) -----------");
    print!("{}", write_hier_wirelist(&hext.hier));

    println!("--- extraction statistics --------------------------------");
    println!("{}", hext.report);

    // Flatten ("most CAD tools, especially simulators, require a flat
    // wirelist") and compare against the flat extractor.
    let mut from_hext = hext.hier.flatten();
    let flat = extract_library(&lib, "four-inverters", ExtractOptions::new())?;
    let mut from_flat = flat.netlist;
    from_hext.prune_floating_nets();
    from_flat.prune_floating_nets();
    compare::same_circuit(&from_flat, &from_hext)?;
    println!("--- verification ------------------------------------------");
    println!(
        "flattened hierarchical wirelist ({} devices, {} nets) is \
         isomorphic to the flat extraction",
        from_hext.device_count(),
        from_hext.net_count()
    );
    Ok(())
}
