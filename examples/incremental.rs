//! Incremental extraction — the future-work item from the ACE
//! paper's conclusions ("the edge-based algorithms are well suited
//! for hierarchical and incremental extractors"), realized through
//! HEXT's content-addressed window table: after an edit, only the
//! windows the edit touched are re-analyzed.
//!
//! Run with `cargo run --release --example incremental`.

use std::time::Instant;

use ace::hext::IncrementalExtractor;
use ace::layout::Library;
use ace::workloads::array::memory_array_cif;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut session = IncrementalExtractor::new();

    // First extraction of a 48×48 memory: everything is cold.
    let v1 = Library::from_cif_text(&memory_array_cif(48, 48))?;
    let t0 = Instant::now();
    let first = session.extract(&v1, "ram-v1");
    let t_first = t0.elapsed();
    println!(
        "v1 (48×48, {} devices): {:?} — {} flat calls, {} composes, {} cache hits",
        first.netlist.device_count(),
        t_first,
        first.report.flat_calls,
        first.report.compose_calls,
        first.report.window_cache_hits,
    );

    // The designer adds four rows and re-extracts. Every row window
    // is already in the session table; only the new arrangement
    // composes.
    let v2 = Library::from_cif_text(&memory_array_cif(52, 48))?;
    let t0 = Instant::now();
    let second = session.extract(&v2, "ram-v2");
    let t_second = t0.elapsed();
    println!(
        "v2 (52×48, {} devices): {:?} — {} flat calls, {} composes, {} cache hits",
        second.netlist.device_count(),
        t_second,
        second.report.flat_calls,
        second.report.compose_calls,
        second.report.window_cache_hits,
    );

    // An unchanged re-extraction is pure cache.
    let t0 = Instant::now();
    let third = session.extract(&v2, "ram-v2-again");
    println!(
        "v2 again: {:?} — {} flat calls, {} composes",
        t0.elapsed(),
        third.report.flat_calls,
        third.report.compose_calls,
    );

    println!(
        "\nedit re-extraction took {:.0}% of the cold run; {} unique windows \
         live in the session table",
        100.0 * t_second.as_secs_f64() / t_first.as_secs_f64(),
        session.unique_windows(),
    );
    Ok(())
}
