//! Close the loop the paper's introduction describes: extract a
//! layout, then *simulate* the extracted circuit to validate its
//! logical correctness — without ever writing a schematic.
//!
//! Run with `cargo run --example logic_sim`.

use ace::core::{extract_text, ExtractOptions};
use ace::wirelist::sim::{Logic, Simulator};
use ace::workloads::cells::chained_inverters_cif;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for stages in [1u32, 2, 3, 4] {
        // Layout → wirelist.
        let extraction = extract_text(&chained_inverters_cif(stages), ExtractOptions::new())?;
        let netlist = extraction.netlist;

        // Wirelist → switch-level simulation.
        let mut sim = Simulator::new(&netlist)?;
        for input in [Logic::Zero, Logic::One] {
            sim.set_input_by_name("IN", input);
            let sweeps = sim.settle();
            let out = sim.value_by_name("OUT");
            let expect = match (input, stages % 2) {
                (Logic::Zero, 1) | (Logic::One, 0) => Logic::One,
                _ => Logic::Zero,
            };
            assert_eq!(out, expect, "chain of {stages} inverted wrongly");
            println!(
                "{stages}-stage chain: IN={input} → OUT={out}  \
                 (settled in {sweeps} sweeps, {} transistors)",
                netlist.device_count()
            );
        }
    }
    println!("\nextracted layouts behave as designed — no schematic needed.");
    Ok(())
}
