//! A testram-style memory array: the hierarchical extractor's best
//! case. Compares HEXT against flat ACE over growing array sizes,
//! reproducing the shape of HEXT Table 4-1.
//!
//! Run with `cargo run --release --example memory_array [side_log2]`.

use std::time::Instant;

use ace::core::{extract_library, ExtractOptions};
use ace::hext::extract_hierarchical;
use ace::layout::Library;
use ace::workloads::array::{square_array_cells, square_array_cif};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let max_s: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);
    println!(
        "{:>10} {:>12} {:>12} {:>9} {:>12} {:>10}",
        "cells", "hext", "flat", "speedup", "flat calls", "composes"
    );
    for s in 1..=max_s {
        let lib = Library::from_cif_text(&square_array_cif(s))?;
        let t0 = Instant::now();
        let hext = extract_hierarchical(&lib, "array");
        let t_hext = t0.elapsed();
        let t0 = Instant::now();
        let flat = extract_library(&lib, "array", ExtractOptions::new())?;
        let t_flat = t0.elapsed();
        assert_eq!(
            flat.netlist.device_count() as u64,
            square_array_cells(s),
            "device count mismatch"
        );
        println!(
            "{:>10} {:>12?} {:>12?} {:>8.1}x {:>12} {:>10}",
            square_array_cells(s),
            t_hext,
            t_flat,
            t_flat.as_secs_f64() / t_hext.as_secs_f64(),
            hext.report.flat_calls,
            hext.report.compose_calls,
        );
    }
    println!(
        "\nEvery 4x in cells roughly doubles the hierarchical time — the \
         paper's O(sqrt N) — while the flat extractor quadruples."
    );
    Ok(())
}
