//! Geometry output: "User options exist to force the extractor to
//! output the geometry associated with each net and device" (§3).
//! The paper deliberately leaves capacitance/resistance to
//! post-processors; this example plays that post-processor, deriving
//! per-net area (a capacitance proxy) from the emitted geometry.
//!
//! Run with `cargo run --example net_geometry`.

use ace::core::{extract_text, ExtractOptions};
use ace::geom::union_area;
use ace::wirelist::{write_wirelist, WirelistOptions};
use ace::workloads::cells::inverter_cif;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let result = extract_text(&inverter_cif(), ExtractOptions::new().with_geometry())?;
    let mut netlist = result.netlist;
    netlist.prune_floating_nets();
    netlist.name = "inverter.cif".to_string();

    println!("--- wirelist with (CIF \"…\") geometry blocks -------------");
    print!(
        "{}",
        write_wirelist(&netlist, WirelistOptions::new().with_geometry())
    );

    println!("--- post-processing: per-net area by layer ----------------");
    for (id, net) in netlist.nets() {
        let name = net.primary_name().unwrap_or("(unnamed)");
        let mut per_layer = std::collections::BTreeMap::new();
        for (layer, rect) in &net.geometry {
            per_layer
                .entry(layer.cif_name())
                .or_insert_with(Vec::new)
                .push(*rect);
        }
        print!("{id} {name:<10}");
        for (layer, rects) in per_layer {
            print!("  {layer}: {} λ²", union_area(&rects) / (250 * 250));
        }
        println!();
    }

    println!("\n--- device channels ---------------------------------------");
    for d in netlist.devices() {
        let area: i64 = d.channel_geometry.iter().map(|r| r.area()).sum();
        println!(
            "{} at {}: channel area {} λ² ({} boxes)",
            d.kind,
            d.location,
            area / (250 * 250),
            d.channel_geometry.len()
        );
    }
    Ok(())
}
