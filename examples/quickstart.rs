//! Quickstart: extract the paper's Figure 3-3 inverter and print its
//! wirelist (the Figure 3-4 output format).
//!
//! Run with `cargo run --example quickstart`.

use ace::prelude::*;
use ace::wirelist::{write_wirelist, WirelistOptions};
use ace::workloads::cells::inverter_cif;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A CIF description of an NMOS inverter: enhancement pull-down,
    // depletion load strapped to the output, metal rails, and labels.
    let cif = inverter_cif();
    println!("--- CIF input -------------------------------------------");
    println!("{cif}");

    // Extract it with the flat edge-based extractor.
    let result = extract_text(&cif, ExtractOptions::new())?;
    let mut netlist = result.netlist;
    netlist.prune_floating_nets();
    netlist.name = "inverter.cif".to_string();

    println!("--- wirelist --------------------------------------------");
    print!("{}", write_wirelist(&netlist, WirelistOptions::new()));

    println!("--- summary ---------------------------------------------");
    let (enh, dep, cap) = netlist.device_census();
    println!(
        "{} devices ({enh} enhancement, {dep} depletion, {cap} capacitors), {} nets",
        netlist.device_count(),
        netlist.net_count()
    );
    for d in netlist.devices() {
        println!(
            "  {} L={} W={} at {} (gate {}, source {}, drain {})",
            d.kind, d.length, d.width, d.location, d.gate, d.source, d.drain
        );
    }
    println!("extraction: {}", result.report);
    Ok(())
}
