//! The static checker from the paper's introduction: "A static
//! checker performs ratio checks, detects malformed transistors, and
//! checks for signals that are stuck at logical 0 or 1." This example
//! extracts two layouts and runs the checker over the wirelists.
//!
//! Run with `cargo run --example static_check`.

use ace::core::{extract_text, ExtractOptions};
use ace::wirelist::check::{check_netlist, CheckOptions};
use ace::workloads::cells::chained_inverters_cif;

fn report(title: &str, netlist: &ace::wirelist::Netlist) {
    println!("--- {title} ---");
    let diagnostics = check_netlist(netlist, &CheckOptions::default());
    if diagnostics.is_empty() {
        println!("clean: no violations");
    } else {
        for d in &diagnostics {
            println!("  ✗ {d}");
        }
    }
    println!();
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The demo inverter chain. Its transistors are square (L = W =
    // 2λ), so every stage violates the Mead–Conway 4:1 inverter ratio
    // — exactly the kind of mistake a ratio check exists to catch.
    let chain = extract_text(&chained_inverters_cif(3), ExtractOptions::new())?;
    let mut nl = chain.netlist;
    nl.prune_floating_nets();
    report("three square-transistor inverters (ratio violations)", &nl);

    // A properly ratioed inverter: the depletion load channel is 4
    // squares (2λ wide, 8λ long), the pull-down 1 square.
    let good = extract_text(
        "
        L ND; B 500 5250 1250 3125;                 (diffusion column)
        L NP; B 1500 500 1250 1250;                 (pull-down gate, 1 square)
        L NP; B 500 1500 1250 2500;                 (output strap over...)
        L NB; B 500 1500 1250 2500;                 (...a buried contact)
        L NP; B 1500 2000 1250 4250;                (load gate, 4 squares)
        L NI; B 2000 2600 1250 4250;                (implant over the load)
        L NM; B 3000 500 1250 5750; L NC; B 250 250 1250 5625;  (VDD)
        L NM; B 3000 500 1250 500;  L NC; B 250 250 1250 625;   (GND)
        94 VDD 1250 5750 NM; 94 GND 1250 500 NM;
        94 IN 750 1250 NP; 94 OUT 1250 2500 NP;
        E",
        ExtractOptions::new(),
    )?;
    let mut nl = good.netlist;
    nl.prune_floating_nets();
    for d in nl.devices() {
        println!(
            "{} L={} W={} ({:.1} squares)",
            d.kind,
            d.length,
            d.width,
            d.length as f64 / d.width as f64
        );
    }
    report("hand-ratioed inverter", &nl);
    Ok(())
}
