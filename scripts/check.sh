#!/bin/sh
# Offline CI gate: build, test, and check formatting.
#
# Runs entirely without network access: every external dependency is
# vendored under vendor/ as a path dependency (see Cargo.toml), and
# crates/bench's criterion harnesses are feature-gated.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test"
cargo test --offline -q

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy"
cargo clippy --workspace --offline -- -D warnings

echo "==> cargo doc"
cargo doc --no-deps --offline

echo "OK"
