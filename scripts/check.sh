#!/bin/sh
# Offline CI gate: build, test, and check formatting.
#
# Runs entirely without network access: every external dependency is
# vendored under vendor/ as a path dependency (see Cargo.toml), and
# crates/bench's criterion harnesses are feature-gated.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test"
cargo test --offline -q

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy"
cargo clippy --workspace --offline -- -D warnings

echo "==> cargo doc"
cargo doc --no-deps --offline

echo "==> conformance repro triage gate"
# Any .cif under conformance/repros/ is an un-triaged cross-backend
# divergence (see conformance/repros/README.md). Triage it before
# landing: fix the backend and promote the repro to the corpus, or
# fix the comparison policy.
untriaged=$(find conformance/repros -name '*.cif' 2>/dev/null | sort)
if [ -n "$untriaged" ]; then
    echo "un-triaged conformance repros present:" >&2
    echo "$untriaged" >&2
    exit 1
fi

echo "==> conformance smoke (seed 1983, 64 cases) + corpus replay"
target/release/conformance --seed 1983 --cases 64 --quiet
target/release/conformance --corpus --quiet

echo "==> incremental conformance smoke (seed 1983, 64 edit cases)"
target/release/conformance --incremental --seed 1983 --cases 64 --quiet

echo "OK"
