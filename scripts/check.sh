#!/bin/sh
# Offline CI gate: build, test, and check formatting.
#
# Runs entirely without network access: every external dependency is
# vendored under vendor/ as a path dependency (see Cargo.toml), and
# crates/bench's criterion harnesses are feature-gated.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test"
cargo test --offline -q

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (incl. clippy::perf)"
cargo clippy --workspace --offline -- -W clippy::perf -D warnings

echo "==> cargo doc"
cargo doc --no-deps --offline

echo "==> conformance repro triage gate"
# Any .cif under conformance/repros/ is an un-triaged cross-backend
# divergence (see conformance/repros/README.md). Triage it before
# landing: fix the backend and promote the repro to the corpus, or
# fix the comparison policy.
untriaged=$(find conformance/repros -name '*.cif' 2>/dev/null | sort)
if [ -n "$untriaged" ]; then
    echo "un-triaged conformance repros present:" >&2
    echo "$untriaged" >&2
    exit 1
fi

echo "==> conformance smoke (seed 1983, 64 cases) + corpus replay"
target/release/conformance --seed 1983 --cases 64 --quiet
target/release/conformance --corpus --quiet

echo "==> lint snapshot gate over the corpus"
# Every corpus layout's ERC diagnostics are pinned in
# conformance/corpus/lints.txt; regenerate after an intentional rule
# change with ACE_LINT_RECORD=1 cargo test -p ace_lint --test golden.
# In --snapshot mode acelint exits 0 on agreement (even when pinned
# diagnostics include errors) and 1 on any divergence.
target/release/acelint conformance/corpus/*.cif \
    --snapshot conformance/corpus/lints.txt

echo "==> lint SARIF shape"
# The SARIF emitter must produce parseable 2.1.0 output; the full
# structural validation runs in crates/lint/src/sarif.rs tests.
sarif=$(target/release/acelint conformance/corpus/*.cif --format sarif || true)
case "$sarif" in
    '{'*'"version": "2.1.0"'*) ;;
    *) echo "acelint --format sarif produced malformed output" >&2; exit 1 ;;
esac

echo "==> lint agreement fuzz (seed 1983, 64 cases)"
target/release/conformance --seed 1983 --cases 64 --lint-agreement --quiet

echo "==> incremental conformance smoke (seed 1983, 64 edit cases)"
target/release/conformance --incremental --seed 1983 --cases 64 --quiet

echo "==> parasitic conformance smoke (seed 1983, 64 cases)"
# All six backends must agree on every net's union area/perimeter and
# cut-area totals, and the flat sweep's accumulator is additionally
# checked against the brute-force coordinate-compression oracle.
target/release/conformance --seed 1983 --cases 64 --parasitics --quiet

echo "==> parallel timing smoke"
# Asserts the banded sweep is not slower than flat when the host has
# more than one core (on a 1-core host banding can only measure
# scheduler overhead, so the speedup assertion is skipped). Writes no
# file.
cargo build --release --offline -p ace-bench
target/release/parallel_timing --smoke

echo "==> aced service smoke"
# Starts the daemon on a throwaway socket, runs the load generator's
# smoke mode against it (4 concurrent clients; every wire answer must
# match the in-process extractor), then asserts a clean SIGTERM
# shutdown: exit 0 and the socket file unlinked.
aced_sock=$(mktemp -u /tmp/aced-check-XXXXXX.sock)
target/release/aced --socket "$aced_sock" &
aced_pid=$!
trap 'kill "$aced_pid" 2>/dev/null || true' EXIT
# Wait for the socket to appear (the daemon binds before serving).
for _ in $(seq 1 100); do
    [ -S "$aced_sock" ] && break
    sleep 0.05
done
[ -S "$aced_sock" ] || { echo "aced never bound $aced_sock" >&2; exit 1; }
target/release/service_load --smoke --socket "$aced_sock"
kill -TERM "$aced_pid"
wait "$aced_pid" || { echo "aced did not exit cleanly on SIGTERM" >&2; exit 1; }
trap - EXIT
[ ! -e "$aced_sock" ] || { echo "aced left $aced_sock behind" >&2; exit 1; }

echo "OK"
