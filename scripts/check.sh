#!/bin/sh
# Offline CI gate: build, test, and check formatting.
#
# Runs entirely without network access: every external dependency is
# vendored under vendor/ as a path dependency (see Cargo.toml), and
# crates/bench's criterion harnesses are feature-gated.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test"
cargo test --offline -q

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (incl. clippy::perf)"
cargo clippy --workspace --offline -- -W clippy::perf -D warnings

echo "==> cargo doc"
cargo doc --no-deps --offline

echo "==> conformance repro triage gate"
# Any .cif under conformance/repros/ is an un-triaged cross-backend
# divergence (see conformance/repros/README.md). Triage it before
# landing: fix the backend and promote the repro to the corpus, or
# fix the comparison policy.
untriaged=$(find conformance/repros -name '*.cif' 2>/dev/null | sort)
if [ -n "$untriaged" ]; then
    echo "un-triaged conformance repros present:" >&2
    echo "$untriaged" >&2
    exit 1
fi

echo "==> conformance smoke (seed 1983, 64 cases) + corpus replay"
target/release/conformance --seed 1983 --cases 64 --quiet
target/release/conformance --corpus --quiet

echo "==> lint snapshot gate over the corpus"
# Every corpus layout's ERC diagnostics are pinned in
# conformance/corpus/lints.txt; regenerate after an intentional rule
# change with ACE_LINT_RECORD=1 cargo test -p ace_lint --test golden.
# In --snapshot mode acelint exits 0 on agreement (even when pinned
# diagnostics include errors) and 1 on any divergence.
target/release/acelint conformance/corpus/*.cif \
    --snapshot conformance/corpus/lints.txt

echo "==> lint SARIF shape"
# The SARIF emitter must produce parseable 2.1.0 output; the full
# structural validation runs in crates/lint/src/sarif.rs tests.
sarif=$(target/release/acelint conformance/corpus/*.cif --format sarif || true)
case "$sarif" in
    '{'*'"version": "2.1.0"'*) ;;
    *) echo "acelint --format sarif produced malformed output" >&2; exit 1 ;;
esac

echo "==> lint agreement fuzz (seed 1983, 64 cases)"
target/release/conformance --seed 1983 --cases 64 --lint-agreement --quiet

echo "==> incremental conformance smoke (seed 1983, 64 edit cases)"
target/release/conformance --incremental --seed 1983 --cases 64 --quiet

echo "==> parallel timing smoke"
# Asserts the banded sweep is not slower than flat when the host has
# more than one core (on a 1-core host banding can only measure
# scheduler overhead, so the speedup assertion is skipped). Writes no
# file.
cargo build --release --offline -p ace-bench
target/release/parallel_timing --smoke

echo "OK"
