//! Facade crate re-exporting the ACE reproduction workspace.
pub use ace_cif as cif;
pub use ace_core as core;
pub use ace_geom as geom;
pub use ace_hext as hext;
pub use ace_layout as layout;
pub use ace_raster as raster;
pub use ace_wirelist as wirelist;
pub use ace_workloads as workloads;
