//! Facade crate re-exporting the ACE reproduction workspace.
//!
//! Downstream code can either reach into the per-crate modules
//! (`ace::core`, `ace::hext`, …) or pull the whole public extraction
//! surface from [`prelude`]:
//!
//! ```
//! use ace::prelude::*;
//!
//! let lib = Library::from_cif_text("L ND; B 400 1600 0 0; L NP; B 1600 400 0 0; E")?;
//! let result = extract_library(&lib, "gate", ExtractOptions::new())?;
//! assert_eq!(result.netlist.device_count(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

pub use ace_cif as cif;
pub use ace_conformance as conformance;
pub use ace_core as core;
pub use ace_geom as geom;
pub use ace_hext as hext;
pub use ace_layout as layout;
pub use ace_lint as lint;
pub use ace_raster as raster;
pub use ace_wirelist as wirelist;
pub use ace_workloads as workloads;

/// The full public extraction surface in one import.
///
/// Groups, by origin:
///
/// * **Geometry and layout** — [`Coord`](geom::Coord) /
///   [`Layer`](geom::Layer) / [`Rect`](geom::Rect) / λ, the CIF
///   [`Library`](layout::Library), and the flattened
///   [`FlatLayout`](layout::FlatLayout).
/// * **Extraction entry points** — `extract_text` / `extract_library`
///   / `extract_flat` / `extract_feed` and their `_probed` variants,
///   all returning `Result<Extraction, ExtractError>`; banding is
///   selected with [`ExtractOptions::with_threads`].
/// * **Backends** — the [`CircuitExtractor`] trait and its five
///   implementations: [`FlatExtractor`] (flat or banded),
///   [`HierarchicalExtractor`], [`PartlistExtractor`],
///   [`CifplotExtractor`].
/// * **Observability** — the [`Probe`] trait, the [`NullProbe`] /
///   [`CounterProbe`] / [`ChromeTraceProbe`] / [`SummaryProbe`]
///   sinks, and the [`Lane`] / [`Span`] / [`Counter`] vocabulary.
/// * **Results** — [`Extraction`], [`ExtractionReport`],
///   [`BandReport`], [`StitchStats`], the [`Netlist`] it carries, and
///   netlist comparison via [`wirelist::compare`].
/// * **Linting** — [`extract_library_linted`](lint::extract_library_linted),
///   the [`LintConfig`](lint::LintConfig) rule registry, and the
///   [`Diagnostic`](lint::Diagnostic) / [`RuleId`](lint::RuleId) /
///   [`LintSeverity`](lint::Severity) vocabulary.
pub mod prelude {
    pub use ace_core::{
        extract_banded, extract_banded_probed, extract_feed, extract_feed_probed, extract_flat,
        extract_flat_probed, extract_library, extract_library_probed, extract_text,
        extract_text_probed, BandReport, ChromeTraceProbe, CircuitExtractor, Counter, CounterProbe,
        ExtractError, ExtractOptions, Extraction, ExtractionReport, Extractor, FlatExtractor, Lane,
        NullProbe, Phase, Probe, Span, StitchStats, SummaryProbe, TraceEvent, WindowExtraction,
    };
    pub use ace_geom::{Coord, Layer, Rect, LAMBDA};
    pub use ace_hext::{
        extract_hierarchical, extract_hierarchical_probed, HextExtraction, HierarchicalExtractor,
        IncrementalExtractor,
    };
    pub use ace_layout::{FlatLayout, Library};
    pub use ace_lint::{
        extract_library_linted, extract_text_linted, lint, lint_extraction, Diagnostic, LintConfig,
        Linted, RuleId, Severity as LintSeverity,
    };
    pub use ace_raster::{
        extract_cifplot, extract_cifplot_probed, extract_partlist, extract_partlist_probed,
        CifplotExtractor, PartlistExtractor, RasterExtraction, RasterReport,
    };
    pub use ace_wirelist::{
        critical_path, write_spice, write_wirelist, CriticalPath, Device, DeviceKind, Net, Netlist,
        ParasiticParams, WirelistOptions,
    };
}
