//! Workspace-level conformance checks: a fixed-budget differential
//! fuzz smoke, golden-corpus replay, shrinker behaviour on an
//! injected fault, and the regression layouts behind real bugs the
//! fuzzer has found.
//!
//! The big runs live in the `conformance` binary (`--seed 1983
//! --cases 256` is the acceptance bar); these tests keep the budget
//! small so `cargo test -q` stays fast.

use ace::conformance::harness::{check_agreement, diverges};
use ace::conformance::shrink::shrink_with_budget;
use ace::conformance::{run, BackendId, RunConfig};
use ace::layout::Library;
use ace::prelude::*;

/// A couple of dozen random cases across all five backends. The full
/// nightly-sized sweep is the binary's job; this is the tripwire.
#[test]
fn fuzz_smoke_all_backends_agree() {
    let config = RunConfig::new(1983, 24);
    let summary = run(&config).expect("fuzz run");
    assert_eq!(summary.cases, 24);
    let failures: Vec<String> = summary
        .divergent
        .iter()
        .map(|c| {
            format!(
                "case {} seed {} [{}]: {}",
                c.index, c.case_seed, c.strategy, c.divergence
            )
        })
        .collect();
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

/// Every checked-in corpus layout extracts identically on all five
/// backends and matches its canonical signature line.
#[test]
fn corpus_replays_clean() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("conformance/corpus");
    let report = ace::conformance::corpus::replay(&dir, &BackendId::ALL).expect("corpus replay");
    assert!(
        !report.cases.is_empty(),
        "corpus missing — expected layouts in {}",
        dir.display()
    );
    let failures: Vec<String> = report
        .failures()
        .map(|c| format!("{}: {}", c.file, c.failure.clone().unwrap_or_default()))
        .collect();
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

/// Inject a fault — an oracle simulating a backend that always drops
/// one device — into a 60-box layout and require the shrinker to cut
/// the repro down to at most 10 boxes.
#[test]
fn shrinker_reduces_injected_fault_to_ten_boxes() {
    let chip = ace::workloads::chips::generate_chip(
        &ace::workloads::chips::paper_chip("cherry")
            .unwrap()
            .scaled(0.02),
    );
    let cif = chip.cif;
    // "Divergence" whenever the layout has at least one device: a
    // backend that loses a device disagrees exactly then.
    let mut oracle = |text: &str| {
        let Ok(lib) = Library::from_cif_text(text) else {
            return false;
        };
        extract_library(&lib, "fault", ExtractOptions::new())
            .map(|e| e.netlist.device_count() >= 1)
            .unwrap_or(false)
    };
    let lib = Library::from_cif_text(&cif).expect("chip proxy parses");
    assert!(
        lib.instantiated_box_count() > 10,
        "fault layout too small to demonstrate shrinking"
    );
    let (small, stats) = shrink_with_budget(&cif, &mut oracle, 2000);
    assert!(oracle(&small), "shrunk repro must still trigger the fault");
    assert!(
        stats.boxes_after <= 10,
        "expected <= 10 boxes, got {} (from {})",
        stats.boxes_after,
        stats.boxes_before
    );
}

/// The exact layout class behind the first bug the fuzzer found: a
/// channel splits a diffusion strip into two symmetric segments and a
/// `94` label names one of them. The banded backend stitches
/// source/drain in the opposite order from the flat sweep; the
/// comparator must still recognize the circuits as identical.
#[test]
fn regression_banded_split_label_agrees() {
    let cif = "L NP; B 250 250 125 1125; L ND; B 250 1500 125 750; 94 phi1 125 125 ND; E";
    let lib = Library::from_cif_text(cif).unwrap();
    let outcome = check_agreement(&lib, &BackendId::ALL).expect("extraction");
    assert!(outcome.is_none(), "{}", outcome.unwrap());
    assert!(!diverges(cif, &BackendId::ALL));
}

/// The banded stitcher must carry the extraction title (it once
/// returned an empty name, found via the conformance repro dumps).
#[test]
fn banded_netlist_keeps_its_name() {
    let lib = Library::from_cif_text(&ace::workloads::cells::four_inverters_cif()).unwrap();
    let flat = FlatLayout::from_library(&lib);
    let banded = extract_flat(flat, "title-check", ExtractOptions::new().with_threads(3))
        .expect("banded extraction");
    assert_eq!(banded.netlist.name, "title-check");
}
