//! Cross-validation through the [`CircuitExtractor`] trait: five
//! independently implemented backends (flat scanline, banded
//! scanline, hierarchical window/compose, run-encoded raster,
//! full-grid raster) must produce the same circuit on λ-aligned
//! layouts.

use ace::prelude::*;
use ace::wirelist::compare::same_circuit;
use ace::workloads::array::{memory_array_cif, square_array_cif};
use ace::workloads::cells::{chained_inverters_cif, inverter_cif};
use ace::workloads::chips::{generate_chip, paper_chip};
use ace::workloads::mesh::mesh_cif;

/// All five backends over one layout, driven through the trait.
fn backends(lib: &Library) -> Vec<Box<dyn CircuitExtractor>> {
    let flat = FlatLayout::from_library(lib);
    vec![
        Box::new(FlatExtractor::new(flat.clone())),
        Box::new(FlatExtractor::banded(flat.clone(), 3)),
        Box::new(HierarchicalExtractor::new(lib.clone())),
        Box::new(PartlistExtractor::new(flat.clone(), LAMBDA)),
        Box::new(CifplotExtractor::new(flat, LAMBDA)),
    ]
}

fn check_all_backends(src: &str, what: &str) {
    let lib = Library::from_cif_text(src).expect("valid CIF");
    let mut reference: Option<(&'static str, Netlist)> = None;
    for mut b in backends(&lib) {
        let name = b.backend();
        let r = b
            .extract(what)
            .unwrap_or_else(|e| panic!("{what}: {name}: {e}"));
        match &reference {
            None => reference = Some((name, r.netlist)),
            Some((ref_name, ref_netlist)) => {
                if let Err(d) = same_circuit(ref_netlist, &r.netlist) {
                    panic!("{what}: {ref_name} vs {name}: {d}");
                }
            }
        }
    }
}

#[test]
fn inverter_agrees() {
    check_all_backends(&inverter_cif(), "inverter");
}

#[test]
fn inverter_chain_agrees() {
    check_all_backends(&chained_inverters_cif(5), "chain");
}

#[test]
fn mesh_agrees() {
    check_all_backends(&mesh_cif(5), "mesh");
}

#[test]
fn memory_array_agrees() {
    check_all_backends(&memory_array_cif(3, 4), "memory");
}

#[test]
fn square_array_agrees() {
    check_all_backends(&square_array_cif(2), "array");
}

#[test]
fn chip_proxy_agrees() {
    let spec = paper_chip("cherry").expect("spec").scaled(0.05);
    let chip = generate_chip(&spec);
    check_all_backends(&chip.cif, "cherry@0.05");
}

/// The work-stealing configuration — fewer workers than bands, so
/// the scheduler's steal path is live — must be invisible in the
/// output: wirelists `same_circuit`-identical to the flat sweep, the
/// incremental extractor, and the lazy feed, and lint diagnostics
/// bit-identical across all four.
#[test]
fn work_stealing_banded_matches_flat_incremental_and_lazy() {
    use ace_lint::{lint, LintConfig};

    for (src, what) in [
        (mesh_cif(5), "mesh"),
        (memory_array_cif(3, 4), "memory"),
        (chained_inverters_cif(5), "chain"),
    ] {
        let lib = Library::from_cif_text(&src).expect("valid CIF");
        let flat = FlatLayout::from_library(&lib);
        let reference =
            extract_flat(flat.clone(), what, ExtractOptions::new()).expect("flat extracts");
        let ref_diags = lint(&reference.netlist, &flat, &LintConfig::new());

        let mut variants: Vec<(&str, Box<dyn CircuitExtractor>)> = vec![
            (
                "banded(2 threads over 8 bands)",
                Box::new(
                    FlatExtractor::new(flat.clone())
                        .with_options(ExtractOptions::new().with_threads(2).with_bands(8)),
                ),
            ),
            (
                "incremental",
                Box::new(ace_core::IncrementalExtractor::new(flat.clone(), 8)),
            ),
            ("lazy", Box::new(ace_core::LazyExtractor::new(lib.clone()))),
        ];
        for (desc, backend) in &mut variants {
            let r = backend
                .extract(what)
                .unwrap_or_else(|e| panic!("{what}: {desc}: {e}"));
            if let Err(d) = same_circuit(&reference.netlist, &r.netlist) {
                panic!("{what}: flat vs {desc}: {d}");
            }
            assert_eq!(
                lint(&r.netlist, &flat, &LintConfig::new()),
                ref_diags,
                "{what}: {desc}: lint diagnostics diverge from flat"
            );
        }

        // The stealing config really did run threads < bands.
        let stealing = extract_flat(
            flat,
            what,
            ExtractOptions::new().with_threads(2).with_bands(8),
        )
        .expect("banded extracts");
        assert_eq!(stealing.report.threads, 2, "{what}: worker count");
        assert!(
            stealing.report.bands > stealing.report.threads,
            "{what}: expected more bands than workers, got {} bands / {} workers",
            stealing.report.bands,
            stealing.report.threads
        );
    }
}

/// Per-net parasitic totals (area, perimeter, cut area per layer) are
/// an exact union computation, so all six backends must agree on them
/// to the last centimicron² — and the totals must survive shuffling
/// the box feed order, since a union is order-free.
#[test]
fn parasitic_totals_agree_across_backends_and_feed_order() {
    use ace_conformance::parasitic_signature;
    use rand::{Rng as _, SeedableRng as _};

    for (src, what) in [
        (inverter_cif(), "inverter"),
        (chained_inverters_cif(5), "chain"),
        (mesh_cif(5), "mesh"),
        (memory_array_cif(3, 4), "memory"),
    ] {
        let lib = Library::from_cif_text(&src).expect("valid CIF");
        let mut reference: Option<(&'static str, Vec<_>)> = None;
        for mut b in backends(&lib) {
            let name = b.backend();
            let mut r = b
                .extract(what)
                .unwrap_or_else(|e| panic!("{what}: {name}: {e}"));
            r.netlist.prune_floating_nets();
            let sig = parasitic_signature(&r.netlist);
            match &reference {
                None => {
                    assert!(
                        sig.iter().any(|(_, p)| !p.is_zero()),
                        "{what}: reference extraction should accumulate parasitics"
                    );
                    reference = Some((name, sig));
                }
                Some((ref_name, ref_sig)) => {
                    assert_eq!(
                        ref_sig, &sig,
                        "{what}: {ref_name} vs {name}: parasitic totals diverge"
                    );
                }
            }
        }

        // Feed-order invariance: rebuild the flat layout with its
        // boxes in three different shuffled orders.
        let flat = FlatLayout::from_library(&lib);
        let (_, ref_sig) = reference.expect("reference extracted");
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0x9e3779b97f4a7c15);
        for round in 0..3 {
            let mut boxes: Vec<_> = flat.boxes().to_vec();
            for i in (1..boxes.len()).rev() {
                boxes.swap(i, rng.gen_range(0..i + 1));
            }
            let mut shuffled = FlatLayout::new();
            for b in boxes {
                shuffled.push_box(b.layer, b.rect);
            }
            for l in flat.labels() {
                shuffled.push_label(l.name.clone(), l.at, l.layer);
            }
            let mut r = extract_flat(shuffled, what, ExtractOptions::new())
                .unwrap_or_else(|e| panic!("{what}: shuffle {round}: {e}"));
            r.netlist.prune_floating_nets();
            assert_eq!(
                ref_sig,
                parasitic_signature(&r.netlist),
                "{what}: parasitic totals depend on feed order (round {round})"
            );
        }
    }
}

#[test]
fn backend_names_are_stable() {
    let lib = Library::from_cif_text(&inverter_cif()).expect("valid CIF");
    let names: Vec<&'static str> = backends(&lib).iter().map(|b| b.backend()).collect();
    assert_eq!(
        names,
        ["ace-flat", "ace-banded", "hext", "partlist", "cifplot"]
    );
}

#[test]
fn raster_work_ordering_matches_the_paper() {
    // ACE visits edges, Partlist visits runs, Cifplot visits every
    // cell: the work counters must be ordered that way on a chip with
    // real empty space.
    let spec = paper_chip("cherry").expect("spec").scaled(0.1);
    let chip = generate_chip(&spec);
    let lib = Library::from_cif_text(&chip.cif).expect("valid");
    let flat = FlatLayout::from_library(&lib);
    let ace = extract_library(&lib, "c", ExtractOptions::new()).expect("extracts");
    let partlist = extract_partlist(&flat, "c", LAMBDA);
    let cifplot = extract_cifplot(&flat, "c", LAMBDA);
    assert!(
        ace.report.scanline_stops < partlist.report.rows,
        "the edge-based scan must pause less often than the raster scan \
         ({} stops vs {} rows)",
        ace.report.scanline_stops,
        partlist.report.rows
    );
    assert!(
        partlist.report.runs_visited < cifplot.report.cells_visited,
        "run encoding must visit less than the full grid \
         ({} runs vs {} cells)",
        partlist.report.runs_visited,
        cifplot.report.cells_visited
    );
}
