//! Cross-validation through the [`CircuitExtractor`] trait: five
//! independently implemented backends (flat scanline, banded
//! scanline, hierarchical window/compose, run-encoded raster,
//! full-grid raster) must produce the same circuit on λ-aligned
//! layouts.

use ace::prelude::*;
use ace::wirelist::compare::same_circuit;
use ace::workloads::array::{memory_array_cif, square_array_cif};
use ace::workloads::cells::{chained_inverters_cif, inverter_cif};
use ace::workloads::chips::{generate_chip, paper_chip};
use ace::workloads::mesh::mesh_cif;

/// All five backends over one layout, driven through the trait.
fn backends(lib: &Library) -> Vec<Box<dyn CircuitExtractor>> {
    let flat = FlatLayout::from_library(lib);
    vec![
        Box::new(FlatExtractor::new(flat.clone())),
        Box::new(FlatExtractor::banded(flat.clone(), 3)),
        Box::new(HierarchicalExtractor::new(lib.clone())),
        Box::new(PartlistExtractor::new(flat.clone(), LAMBDA)),
        Box::new(CifplotExtractor::new(flat, LAMBDA)),
    ]
}

fn check_all_backends(src: &str, what: &str) {
    let lib = Library::from_cif_text(src).expect("valid CIF");
    let mut reference: Option<(&'static str, Netlist)> = None;
    for mut b in backends(&lib) {
        let name = b.backend();
        let r = b
            .extract(what)
            .unwrap_or_else(|e| panic!("{what}: {name}: {e}"));
        match &reference {
            None => reference = Some((name, r.netlist)),
            Some((ref_name, ref_netlist)) => {
                if let Err(d) = same_circuit(ref_netlist, &r.netlist) {
                    panic!("{what}: {ref_name} vs {name}: {d}");
                }
            }
        }
    }
}

#[test]
fn inverter_agrees() {
    check_all_backends(&inverter_cif(), "inverter");
}

#[test]
fn inverter_chain_agrees() {
    check_all_backends(&chained_inverters_cif(5), "chain");
}

#[test]
fn mesh_agrees() {
    check_all_backends(&mesh_cif(5), "mesh");
}

#[test]
fn memory_array_agrees() {
    check_all_backends(&memory_array_cif(3, 4), "memory");
}

#[test]
fn square_array_agrees() {
    check_all_backends(&square_array_cif(2), "array");
}

#[test]
fn chip_proxy_agrees() {
    let spec = paper_chip("cherry").expect("spec").scaled(0.05);
    let chip = generate_chip(&spec);
    check_all_backends(&chip.cif, "cherry@0.05");
}

#[test]
fn backend_names_are_stable() {
    let lib = Library::from_cif_text(&inverter_cif()).expect("valid CIF");
    let names: Vec<&'static str> = backends(&lib).iter().map(|b| b.backend()).collect();
    assert_eq!(
        names,
        ["ace-flat", "ace-banded", "hext", "partlist", "cifplot"]
    );
}

#[test]
fn raster_work_ordering_matches_the_paper() {
    // ACE visits edges, Partlist visits runs, Cifplot visits every
    // cell: the work counters must be ordered that way on a chip with
    // real empty space.
    let spec = paper_chip("cherry").expect("spec").scaled(0.1);
    let chip = generate_chip(&spec);
    let lib = Library::from_cif_text(&chip.cif).expect("valid");
    let flat = FlatLayout::from_library(&lib);
    let ace = extract_library(&lib, "c", ExtractOptions::new()).expect("extracts");
    let partlist = extract_partlist(&flat, "c", LAMBDA);
    let cifplot = extract_cifplot(&flat, "c", LAMBDA);
    assert!(
        ace.report.scanline_stops < partlist.report.rows,
        "the edge-based scan must pause less often than the raster scan \
         ({} stops vs {} rows)",
        ace.report.scanline_stops,
        partlist.report.rows
    );
    assert!(
        partlist.report.runs_visited < cifplot.report.cells_visited,
        "run encoding must visit less than the full grid \
         ({} runs vs {} cells)",
        partlist.report.runs_visited,
        cifplot.report.cells_visited
    );
}
