//! Cross-validation: three independently implemented extraction
//! algorithms (edge-based scanline, run-encoded raster, full-grid
//! raster) must produce the same circuit on λ-aligned layouts.

use ace::core::{extract_library, ExtractOptions};
use ace::geom::LAMBDA;
use ace::layout::{FlatLayout, Library};
use ace::raster::{extract_cifplot, extract_partlist};
use ace::wirelist::compare::same_circuit;
use ace::workloads::array::{memory_array_cif, square_array_cif};
use ace::workloads::cells::{chained_inverters_cif, inverter_cif};
use ace::workloads::chips::{generate_chip, paper_chip};
use ace::workloads::mesh::mesh_cif;

fn check_all_three(src: &str, what: &str) {
    let lib = Library::from_cif_text(src).expect("valid CIF");
    let flat = FlatLayout::from_library(&lib);
    let ace = extract_library(&lib, what, ExtractOptions::new());
    let partlist = extract_partlist(&flat, what, LAMBDA);
    let cifplot = extract_cifplot(&flat, what, LAMBDA);
    if let Err(d) = same_circuit(&ace.netlist, &partlist.netlist) {
        panic!("{what}: ACE vs Partlist: {d}");
    }
    if let Err(d) = same_circuit(&ace.netlist, &cifplot.netlist) {
        panic!("{what}: ACE vs Cifplot: {d}");
    }
}

#[test]
fn inverter_agrees() {
    check_all_three(&inverter_cif(), "inverter");
}

#[test]
fn inverter_chain_agrees() {
    check_all_three(&chained_inverters_cif(5), "chain");
}

#[test]
fn mesh_agrees() {
    check_all_three(&mesh_cif(5), "mesh");
}

#[test]
fn memory_array_agrees() {
    check_all_three(&memory_array_cif(3, 4), "memory");
}

#[test]
fn square_array_agrees() {
    check_all_three(&square_array_cif(2), "array");
}

#[test]
fn chip_proxy_agrees() {
    let spec = paper_chip("cherry").expect("spec").scaled(0.05);
    let chip = generate_chip(&spec);
    check_all_three(&chip.cif, "cherry@0.05");
}

#[test]
fn raster_work_ordering_matches_the_paper() {
    // ACE visits edges, Partlist visits runs, Cifplot visits every
    // cell: the work counters must be ordered that way on a chip with
    // real empty space.
    let spec = paper_chip("cherry").expect("spec").scaled(0.1);
    let chip = generate_chip(&spec);
    let lib = Library::from_cif_text(&chip.cif).expect("valid");
    let flat = FlatLayout::from_library(&lib);
    let ace = extract_library(&lib, "c", ExtractOptions::new());
    let partlist = extract_partlist(&flat, "c", LAMBDA);
    let cifplot = extract_cifplot(&flat, "c", LAMBDA);
    assert!(
        ace.report.scanline_stops < partlist.report.rows,
        "the edge-based scan must pause less often than the raster scan \
         ({} stops vs {} rows)",
        ace.report.scanline_stops,
        partlist.report.rows
    );
    assert!(
        partlist.report.runs_visited < cifplot.report.cells_visited,
        "run encoding must visit less than the full grid \
         ({} runs vs {} cells)",
        partlist.report.runs_visited,
        cifplot.report.cells_visited
    );
}
