//! The paper's §1 workflow, end to end: extract a layout, then run
//! the downstream tools — static checker and switch-level simulator —
//! on the resulting wirelist.

use ace::core::{extract_text, ExtractOptions};
use ace::wirelist::check::{check_netlist, CheckOptions, Diagnostic};
use ace::wirelist::sim::{Logic, Simulator};
use ace::wirelist::Netlist;
use ace::workloads::array::memory_array_cif;
use ace::workloads::cells::chained_inverters_cif;

fn extract(src: &str) -> Netlist {
    let mut nl = extract_text(src, ExtractOptions::new())
        .expect("extraction succeeds")
        .netlist;
    nl.prune_floating_nets();
    nl
}

#[test]
fn simulate_every_chain_length_and_input() {
    for stages in 1..=6u32 {
        let nl = extract(&chained_inverters_cif(stages));
        let mut sim = Simulator::new(&nl).expect("rails");
        for input in [Logic::Zero, Logic::One] {
            sim.set_input_by_name("IN", input);
            sim.settle();
            let inverted = stages % 2 == 1;
            let expect = match (input, inverted) {
                (Logic::Zero, true) | (Logic::One, false) => Logic::One,
                _ => Logic::Zero,
            };
            assert_eq!(
                sim.value_by_name("OUT"),
                expect,
                "{stages} stages, IN={input}"
            );
        }
    }
}

#[test]
fn simulate_a_dynamic_ram_write_and_hold() {
    // A 1×1 memory cell: word line (poly), bit line (metal+diffusion),
    // dynamic storage node behind the pass transistor.
    let mut src = memory_array_cif(1, 1);
    // The generator leaves nets unnamed; label word, bit, and rails
    // for the simulator by appending before the E marker. The word
    // line is the poly bar at y∈[1000,1500]; the strapped bit line's
    // metal runs at x∈[750,1750].
    src = src.replace(
        "E\n",
        "94 WORD 100 1250 NP;\n94 BIT 1250 100 NM;\n94 STORE 1250 1750 ND;\n\
         L NM; B 500 500 -2000 0; 94 VDD -2000 0 NM;\n\
         L NM; B 500 500 -2000 -1000; 94 GND -2000 -1000 NM;\nE\n",
    );
    let nl = extract(&src);
    let mut sim = Simulator::new(&nl).expect("rails");

    // Write a 1: word line high, bit line high.
    sim.set_input_by_name("WORD", Logic::One);
    sim.set_input_by_name("BIT", Logic::One);
    sim.settle();
    assert_eq!(sim.value_by_name("STORE"), Logic::One, "write 1");

    // Isolate: word line low, bit line driven low. The storage node
    // must hold its charge — the defining behaviour of a dynamic RAM
    // cell.
    sim.set_input_by_name("WORD", Logic::Zero);
    sim.set_input_by_name("BIT", Logic::Zero);
    sim.settle();
    assert_eq!(sim.value_by_name("STORE"), Logic::One, "hold after isolate");

    // Write a 0 through the reopened pass transistor.
    sim.set_input_by_name("WORD", Logic::One);
    sim.settle();
    assert_eq!(sim.value_by_name("STORE"), Logic::Zero, "write 0");
}

#[test]
fn checker_flags_the_square_transistor_cells() {
    // The demo inverter uses square devices: every stage breaks the
    // 4:1 ratio discipline and the checker must say so — once per
    // stage, and nothing else.
    let nl = extract(&chained_inverters_cif(5));
    let report = check_netlist(&nl, &CheckOptions::default());
    let ratio_violations = report
        .iter()
        .filter(|d| matches!(d, Diagnostic::RatioViolation { .. }))
        .count();
    assert_eq!(ratio_violations, 5, "{report:?}");
    assert_eq!(report.len(), 5, "no spurious diagnostics: {report:?}");
}

#[test]
fn checker_accepts_relaxed_ratio() {
    let nl = extract(&chained_inverters_cif(3));
    let lax = CheckOptions {
        min_ratio: 1.0,
        ..CheckOptions::default()
    };
    assert!(check_netlist(&nl, &lax).is_empty());
}

#[test]
fn checker_and_simulator_work_through_the_hierarchical_extractor() {
    // Same tools, fed from HEXT's flattened wirelist instead of ACE's.
    let lib = ace::layout::Library::from_cif_text(&chained_inverters_cif(3)).expect("valid");
    let hext = ace::hext::extract_hierarchical(&lib, "chain");
    let mut nl = hext.hier.flatten();
    nl.prune_floating_nets();
    let mut sim = Simulator::new(&nl).expect("rails");
    sim.set_input_by_name("IN", Logic::One);
    sim.settle();
    assert_eq!(sim.value_by_name("OUT"), Logic::Zero);
    let report = check_netlist(&nl, &CheckOptions::default());
    assert_eq!(
        report
            .iter()
            .filter(|d| matches!(d, Diagnostic::RatioViolation { .. }))
            .count(),
        3
    );
}
