//! End-to-end pipeline tests: CIF text → front-end → back-end →
//! wirelist text → parsed back.

use ace::core::{extract_text, ExtractOptions};
use ace::wirelist::{parse_wirelist, write_wirelist, DeviceKind, WirelistOptions};
use ace::workloads::cells::{chained_inverters_cif, inverter_cif};
use ace::workloads::chips::{generate_chip, paper_chip};

#[test]
fn inverter_cif_to_wirelist_and_back() {
    let result = extract_text(&inverter_cif(), ExtractOptions::new()).expect("extract");
    let mut netlist = result.netlist;
    netlist.prune_floating_nets();
    netlist.name = "inverter.cif".to_string();

    let text = write_wirelist(&netlist, WirelistOptions::new());
    // Figure 3-4 structure.
    assert!(text.starts_with("(DefPart \"inverter.cif\""));
    assert!(text.contains("(DefPart nEnh (Export Source Gate Drain))"));
    assert!(text.contains("(DefPart nDep (Export Source Gate Drain))"));
    assert!(text.contains("VDD"));
    assert!(text.contains("(Channel (Length 500) (Width 500)"));

    let back = parse_wirelist(&text).expect("parse the wirelist back");
    assert_eq!(back.device_count(), netlist.device_count());
    assert_eq!(back.net_count(), netlist.net_count());
    assert_eq!(back.device_census(), netlist.device_census());
    ace::wirelist::compare::same_circuit(&netlist, &back).expect("round trip is lossless");
}

#[test]
fn geometry_round_trips_through_the_wirelist() {
    let result =
        extract_text(&inverter_cif(), ExtractOptions::new().with_geometry()).expect("extract");
    let mut netlist = result.netlist;
    netlist.prune_floating_nets();
    let text = write_wirelist(&netlist, WirelistOptions::new().with_geometry());
    let back = parse_wirelist(&text).expect("parse");
    // Geometry areas survive the round trip.
    for (id, net) in netlist.nets() {
        let name = net.names.first().expect("all nets are named after pruning");
        let other = back.net_by_name(name).expect("net survives");
        let area = |g: &[(ace::geom::Layer, ace::geom::Rect)]| -> i64 {
            g.iter().map(|(_, r)| r.area()).sum()
        };
        assert_eq!(
            area(&net.geometry),
            area(&back.net(other).geometry),
            "geometry area mismatch on {name} ({id})"
        );
    }
}

#[test]
fn inverter_chain_has_the_expected_logic_structure() {
    let n = 7;
    let result = extract_text(&chained_inverters_cif(n), ExtractOptions::new()).expect("extract");
    let mut nl = result.netlist;
    nl.prune_floating_nets();
    assert_eq!(nl.device_count() as u32, 2 * n);
    // Walk the chain: from IN, each gate's stage output feeds the
    // next gate.
    let mut current = nl.net_by_name("IN").expect("IN");
    for stage in 0..n {
        let enh = nl
            .devices()
            .iter()
            .find(|d| d.kind == DeviceKind::Enhancement && d.gate == current)
            .unwrap_or_else(|| panic!("no enhancement gate on stage {stage}"));
        // The stage output is the enh terminal that also gates the
        // depletion load.
        let output = nl
            .devices()
            .iter()
            .find_map(|d| {
                if d.kind == DeviceKind::Depletion && (d.gate == enh.source || d.gate == enh.drain)
                {
                    Some(d.gate)
                } else {
                    None
                }
            })
            .unwrap_or_else(|| panic!("no depletion load on stage {stage}"));
        current = output;
    }
    assert_eq!(Some(current), nl.net_by_name("OUT"));
}

#[test]
fn chip_proxy_extracts_with_exact_counts() {
    let spec = paper_chip("dchip").expect("spec").scaled(0.05);
    let chip = generate_chip(&spec);
    let result = extract_text(&chip.cif, ExtractOptions::new()).expect("extract");
    assert_eq!(result.netlist.device_count() as u64, chip.devices);
    assert_eq!(result.report.boxes, chip.boxes);
    // The netlist is non-trivial: nets, names, devices of both kinds.
    let (enh, dep, cap) = result.netlist.device_census();
    assert!(enh > 0 && dep > 0);
    assert_eq!(cap, 0, "chip proxies contain no capacitors");
}

#[test]
fn sort_strategies_agree_end_to_end() {
    let spec = paper_chip("cherry").expect("spec").scaled(0.05);
    let chip = generate_chip(&spec);
    let a = extract_text(&chip.cif, ExtractOptions::new()).expect("insertion");
    let b = extract_text(
        &chip.cif,
        ExtractOptions::new().with_sort(ace::core::SortStrategy::Bin),
    )
    .expect("bin");
    ace::wirelist::compare::same_circuit(&a.netlist, &b.netlist)
        .expect("sorting strategy must not change the circuit");
}
