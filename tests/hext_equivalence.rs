//! The hierarchical extractor's correctness contract: flattening its
//! hierarchical wirelist yields the same circuit as flat extraction,
//! on every workload family.

use ace::core::{extract_library, ExtractOptions};
use ace::hext::extract_hierarchical;
use ace::layout::Library;
use ace::wirelist::compare::same_circuit;
use ace::workloads::array::{memory_array_cif, square_array_cif};
use ace::workloads::cells::{chained_inverters_cif, four_inverters_cif};
use ace::workloads::chips::{generate_chip, paper_chip};
use ace::workloads::mesh::mesh_cif;

fn check(src: &str, what: &str) -> ace::hext::HextExtraction {
    let lib = Library::from_cif_text(src).expect("valid CIF");
    let flat = extract_library(&lib, what, ExtractOptions::new()).expect("flat extracts");
    let hext = extract_hierarchical(&lib, what);
    let mut from_flat = flat.netlist.clone();
    let mut from_hext = hext.hier.flatten();
    from_flat.prune_floating_nets();
    from_hext.prune_floating_nets();
    if let Err(d) = same_circuit(&from_flat, &from_hext) {
        panic!(
            "{what}: hierarchical ≠ flat: {d} (flat {}d/{}n, hext {}d/{}n)",
            from_flat.device_count(),
            from_flat.net_count(),
            from_hext.device_count(),
            from_hext.net_count()
        );
    }
    hext
}

#[test]
fn four_inverters() {
    let hext = check(&four_inverters_cif(), "four-inverters");
    // Identical interior cells hit the window table.
    assert!(hext.report.window_cache_hits > 0);
}

#[test]
fn long_chain() {
    check(&chained_inverters_cif(16), "chain-16");
}

#[test]
fn square_arrays() {
    for s in 1..=3 {
        let hext = check(&square_array_cif(s), "array");
        if s >= 2 {
            // The binary-tree array is HEXT's best case: constant flat
            // calls, logarithmic composes.
            assert!(
                hext.report.flat_calls <= 4,
                "s={s}: {} flat calls",
                hext.report.flat_calls
            );
        }
    }
}

#[test]
fn memory_arrays() {
    check(&memory_array_cif(4, 6), "memory-4x6");
    check(&memory_array_cif(1, 9), "memory-1x9");
    check(&memory_array_cif(9, 1), "memory-9x1");
}

#[test]
fn worst_case_mesh() {
    // No hierarchy at all: HEXT degenerates to one flat call, as the
    // paper notes ("a layout containing no hierarchy and no
    // repetition takes longer on a hierarchical extractor").
    let hext = check(&mesh_cif(4), "mesh-4");
    assert_eq!(hext.report.flat_calls, 1);
    assert_eq!(hext.report.compose_calls, 0);
}

#[test]
fn regular_chip_proxy() {
    let spec = paper_chip("testram").expect("spec").scaled(0.02);
    let chip = generate_chip(&spec);
    let hext = check(&chip.cif, "testram@0.02");
    // Regular chip: massive window reuse.
    assert!(
        hext.report.window_cache_hits > hext.report.flat_calls,
        "{:?}",
        hext.report
    );
}

#[test]
fn irregular_chip_proxy() {
    let spec = paper_chip("schip2").expect("spec").scaled(0.02);
    let chip = generate_chip(&spec);
    let hext = check(&chip.cif, "schip2@0.02");
    // Irregular chip: composing dominates the back-end, as in HEXT
    // Table 5-2. The shares are wall-clock ratios over sub-millisecond
    // phases, so take the best of three runs to ride out scheduler
    // noise when the whole suite shares a loaded core.
    let lib = Library::from_cif_text(&chip.cif).expect("valid CIF");
    let mut share = hext.report.compose_percent();
    for _ in 0..2 {
        if share > 40.0 {
            break;
        }
        share = share.max(
            extract_hierarchical(&lib, "schip2@0.02")
                .report
                .compose_percent(),
        );
    }
    assert!(share > 40.0, "compose share {share:.0}%");
}

#[test]
fn transistors_cut_by_window_boundaries() {
    // Loose transistors straddling the slicing lines between cell
    // clusters, in both orientations, plus one at a corner.
    let src = "
        DS 1; L NM; B 1000 1000 500 500; DF;
        C 1 T 0 0; C 1 T 6000 0; C 1 T 0 6000; C 1 T 6000 6000;
        L ND; B 400 2000 1000 500;
        L NP; B 2000 400 1000 500;
        L ND; B 2000 400 3500 1000;
        L NP; B 400 2000 3500 1000;
        E";
    check(src, "cut-transistors");
}

#[test]
fn hierarchical_wirelist_text_is_complete() {
    let lib = Library::from_cif_text(&square_array_cif(2)).expect("valid");
    let hext = extract_hierarchical(&lib, "array");
    let text = ace::wirelist::write_hier_wirelist(&hext.hier);
    assert!(text.contains("(DefPart Window0"));
    assert!(text.contains("(Part chip (Name Top))"));
    assert!(text.contains("LocOffset"));
    // Every unique window appears exactly once as a DefPart.
    let defs = text.matches("(DefPart Window").count();
    assert_eq!(defs as u64, hext.report.unique_windows);
}
