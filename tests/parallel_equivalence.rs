//! The parallel extractor's correctness contract: banded extraction
//! with any thread count yields canonically the same circuit as the
//! sequential flat sweep, on every workload family and on devices,
//! contacts, and labels deliberately straddling band seams.

use ace::core::{extract_banded, extract_flat, ExtractOptions, Extraction};
use ace::geom::{Layer, Rect, LAMBDA};
use ace::layout::{FlatLayout, Library};
use ace::wirelist::compare::same_circuit;
use ace::workloads::bhh::{bhh_cif, BhhParams};
use ace::workloads::chips::{generate_chip, paper_chip};
use ace::workloads::mesh::mesh_cif;
use proptest::prelude::*;

fn flat_of(src: &str) -> FlatLayout {
    FlatLayout::from_library(&Library::from_cif_text(src).expect("valid CIF"))
}

fn check_threads(flat: &FlatLayout, what: &str, threads: usize) -> Extraction {
    let seq = extract_flat(flat.clone(), what, ExtractOptions::new()).expect("flat");
    let par = extract_flat(
        flat.clone(),
        what,
        ExtractOptions::new().with_threads(threads),
    )
    .expect("banded");
    assert_same(&seq, &par, &format!("{what} (K={threads})"));
    par
}

fn check_cuts(flat: &FlatLayout, what: &str, cuts: &[i64]) -> Extraction {
    let seq = extract_flat(flat.clone(), what, ExtractOptions::new()).expect("flat");
    let par = extract_banded(flat.clone(), what, ExtractOptions::new(), cuts).expect("banded");
    assert_same(&seq, &par, &format!("{what} (cuts {cuts:?})"));
    par
}

fn assert_same(seq: &Extraction, par: &Extraction, what: &str) {
    let mut a = seq.netlist.clone();
    let mut b = par.netlist.clone();
    a.prune_floating_nets();
    b.prune_floating_nets();
    if let Err(d) = same_circuit(&a, &b) {
        panic!(
            "{what}: parallel ≠ flat: {d} (flat {}d/{}n, parallel {}d/{}n)",
            a.device_count(),
            a.net_count(),
            b.device_count(),
            b.net_count()
        );
    }
}

/// A vertical transistor: diffusion column crossed by a poly bar, the
/// channel spanning y ∈ [-200, 200].
const VERTICAL_FET: &str = "L ND; B 400 1600 0 0; L NP; B 1600 400 0 0; E";

/// The same transistor rotated: diffusion bar crossed by a poly
/// column, source and drain left and right of the channel.
const HORIZONTAL_FET: &str = "L ND; B 1600 400 0 0; L NP; B 400 1600 0 0; E";

#[test]
fn mesh_is_invariant_in_thread_count() {
    let flat = flat_of(&mesh_cif(5));
    for threads in [1, 2, 3, 7, 16] {
        check_threads(&flat, "mesh-5", threads);
    }
}

#[test]
fn chip_proxy_matches_flat() {
    let spec = paper_chip("cherry").expect("spec").scaled(0.05);
    let chip = generate_chip(&spec);
    let flat = flat_of(&chip.cif);
    for threads in [2, 7] {
        let par = check_threads(&flat, "cherry-5%", threads);
        assert_eq!(par.netlist.device_count() as u64, chip.devices);
    }
}

#[test]
fn bhh_random_squares_match_flat() {
    let flat = flat_of(&bhh_cif(&BhhParams::paper(600, 0xACE)));
    let seq = extract_flat(flat.clone(), "bhh", ExtractOptions::new()).expect("flat");
    for threads in [2, 3, 16] {
        let par = extract_flat(
            flat.clone(),
            "bhh",
            ExtractOptions::new().with_threads(threads),
        )
        .expect("banded");
        assert_eq!(
            seq.netlist.device_count(),
            par.netlist.device_count(),
            "bhh K={threads}"
        );
        // Ties among >2 terminals may be broken differently; the
        // random soup occasionally produces such devices.
        if seq.report.multi_terminal_devices == 0 {
            assert_same(&seq, &par, &format!("bhh (K={threads})"));
        }
    }
}

#[test]
fn transistor_straddling_a_seam_is_merged() {
    let flat = flat_of(VERTICAL_FET);
    // Mid-channel cut: the two channel fragments must be rejoined.
    let par = check_cuts(&flat, "vertical-fet", &[0]);
    assert_eq!(par.report.stitch.device_merges, 1);
    assert_eq!(par.netlist.device_count(), 1);
    let d = &par.netlist.devices()[0];
    assert_eq!((d.length, d.width), (400, 400));
    assert_ne!(d.source, d.drain);
}

#[test]
fn transistor_touching_a_seam_gains_its_terminal_across_it() {
    let flat = flat_of(VERTICAL_FET);
    // The cut coincides with the channel's bottom edge: the channel
    // touches the seam from above and its lower diffusion terminal
    // lies entirely in the band below.
    let par = check_cuts(&flat, "vertical-fet", &[-200]);
    assert!(par.report.stitch.terminal_contacts >= 1);
    let d = &par.netlist.devices()[0];
    assert_eq!((d.length, d.width), (400, 400));
    assert_ne!(d.source, d.drain);
}

#[test]
fn horizontal_transistor_sums_split_terminals() {
    let flat = flat_of(HORIZONTAL_FET);
    // The seam splits both source and drain contact edges; their
    // halves must be summed back, keeping W = 400 (not 200).
    let par = check_cuts(&flat, "horizontal-fet", &[0]);
    assert_eq!(par.report.stitch.device_merges, 1);
    let d = &par.netlist.devices()[0];
    assert_eq!((d.length, d.width), (400, 400));
}

#[test]
fn capacitor_straddling_a_seam_keeps_its_area() {
    let flat = flat_of("L ND; B 400 400 0 0; L NP; B 1000 1000 0 0; E");
    let par = check_cuts(&flat, "capacitor", &[0]);
    let d = &par.netlist.devices()[0];
    assert_eq!(d.kind, ace::wirelist::DeviceKind::Capacitor);
    assert_eq!(d.channel_area(), 400 * 400);
}

#[test]
fn contact_straddling_a_seam_still_connects() {
    let flat = flat_of(
        "L NM; B 1000 1000 0 0; L NP; B 1000 1000 0 0; L NC; B 200 200 0 0;
         94 M -400 0 NM; 94 P 400 0 NP; E",
    );
    let par = check_cuts(&flat, "cut-contact", &[0]);
    let nl = &par.netlist;
    assert_eq!(nl.net_by_name("M"), nl.net_by_name("P"));
    assert!(nl.net_by_name("M").is_some());
    // Metal and poly both straddle the seam; the first pair unions
    // the two halves, the second is already equivalent because the
    // cut joins metal to poly inside each band.
    assert!(par.report.stitch.net_unions >= 1);
}

#[test]
fn buried_contact_straddling_a_seam_suppresses_the_transistor() {
    let flat = flat_of(
        "L ND; B 400 1600 0 0; L NP; B 1600 400 0 0; L NB; B 600 600 0 0;
         94 D 0 700 ND; 94 P 700 0 NP; E",
    );
    let par = check_cuts(&flat, "buried", &[0]);
    assert_eq!(par.netlist.device_count(), 0);
    assert_eq!(par.netlist.net_by_name("D"), par.netlist.net_by_name("P"));
}

#[test]
fn label_on_a_seam_resolves() {
    let flat = flat_of("L NM; B 1000 200 0 0; 94 A 0 0; E");
    let par = check_cuts(&flat, "seam-label", &[0]);
    assert!(par.netlist.net_by_name("A").is_some());
    assert_eq!(par.report.unresolved_labels, 0);
}

#[test]
fn inverter_connectivity_survives_banding() {
    // The canonical inverter (see ace-core's tests), cut through the
    // enhancement channel, the buried contact, and the depletion
    // channel at once.
    let src = "
        L ND; B 400 3200 200 0;
        L NP; B 1200 400 200 -600;
        L NP; B 400 400 200 600;
        L NP; B 400 500 200 150;
        L NI; B 600 600 200 600;
        L NB; B 400 500 200 150;
        L NM; B 800 400 200 1400;
        L NM; B 800 400 200 -1400;
        L NC; B 200 200 200 1400;
        L NC; B 200 200 200 -1400;
        94 VDD 0 1600 NM;
        94 GND 0 -1600 NM;
        94 OUT 200 0 ND;
        94 INP -400 -600 NP;
        E";
    let flat = flat_of(src);
    let par = check_cuts(&flat, "inverter", &[-600, 150, 600]);
    let nl = &par.netlist;
    let out = nl.net_by_name("OUT").expect("OUT");
    let inp = nl.net_by_name("INP").expect("INP");
    let enh = nl
        .devices()
        .iter()
        .find(|d| d.kind == ace::wirelist::DeviceKind::Enhancement)
        .expect("enhancement transistor");
    assert_eq!(enh.gate, inp);
    let dep = nl
        .devices()
        .iter()
        .find(|d| d.kind == ace::wirelist::DeviceKind::Depletion)
        .expect("depletion load");
    assert_eq!(dep.gate, out);
}

#[test]
fn geometry_output_survives_banding() {
    let flat = flat_of(VERTICAL_FET);
    let par =
        extract_banded(flat, "geom", ExtractOptions::new().with_geometry(), &[0]).expect("banded");
    let d = &par.netlist.devices()[0];
    // The merged channel geometry covers the whole 400×400 channel.
    let area: i64 = d.channel_geometry.iter().map(Rect::area).sum();
    assert_eq!(area, 400 * 400);
}

#[test]
fn report_carries_band_and_stitch_instrumentation() {
    let flat = flat_of(&mesh_cif(5));
    let par = extract_flat(flat, "mesh-5", ExtractOptions::new().with_threads(4)).expect("banded");
    assert!(par.report.threads >= 2, "mesh should band");
    assert_eq!(par.report.band_reports.len(), par.report.threads);
    assert!(par.report.stitch.seam_contacts > 0);
    assert!(par.report.stitch.pairs_matched > 0);
    assert!(par.report.band_reports.iter().all(|b| b.boxes > 0));
}

#[test]
fn degenerate_inputs_fall_back_to_sequential() {
    let with_k = |k: usize| ExtractOptions::new().with_threads(k);
    // Empty layout.
    let par = extract_flat(FlatLayout::new(), "empty", with_k(8)).expect("banded");
    assert_eq!(par.netlist.device_count(), 0);
    assert_eq!(par.report.threads, 1);
    // One thread.
    let par = extract_flat(flat_of(VERTICAL_FET), "fet", with_k(1)).expect("banded");
    assert_eq!(par.netlist.device_count(), 1);
    assert_eq!(par.report.threads, 1);
    // A single box has no interior edge to cut at.
    let par = extract_flat(flat_of("L NM; B 100 100 0 0; E"), "box", with_k(8)).expect("banded");
    assert_eq!(par.report.threads, 1);
}

#[test]
fn with_threads_is_deterministic_and_reports_its_workers() {
    // Successor to the removed `extract_parallel` shim test: the
    // unified `with_threads` spelling is the only banded entry point
    // now, so pin its contract directly — repeated runs return the
    // identical netlist (not merely an isomorphic one), the report
    // carries the worker accounting, and the caller's name survives.
    let flat = flat_of(&mesh_cif(4));
    for threads in [2usize, 3, 5] {
        let opts = ExtractOptions::new().with_threads(threads);
        let a = extract_flat(flat.clone(), "mesh-4", opts).expect("banded");
        let b = extract_flat(flat.clone(), "mesh-4", opts).expect("banded");
        assert_eq!(
            a.netlist, b.netlist,
            "banded extraction must be deterministic (K={threads})"
        );
        assert!(a.report.threads >= 1);
        assert_eq!(a.report.band_reports.len(), a.report.bands);
        assert_eq!(a.netlist.name, "mesh-4");
    }
}

fn aligned_rect() -> impl Strategy<Value = Rect> {
    (0i64..24, 0i64..24, 1i64..8, 1i64..8).prop_map(|(x, y, w, h)| {
        Rect::new(x * LAMBDA, y * LAMBDA, (x + w) * LAMBDA, (y + h) * LAMBDA)
    })
}

fn layer() -> impl Strategy<Value = Layer> {
    prop_oneof![
        4 => Just(Layer::Diffusion),
        4 => Just(Layer::Poly),
        3 => Just(Layer::Metal),
        1 => Just(Layer::Cut),
        1 => Just(Layer::Implant),
        1 => Just(Layer::Buried),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn banded_extraction_matches_flat_on_random_soups(
        boxes in prop::collection::vec((layer(), aligned_rect()), 1..24),
        threads in 2usize..6,
    ) {
        let mut flat = FlatLayout::new();
        for (l, r) in &boxes {
            flat.push_box(*l, *r);
        }
        let seq = extract_flat(flat.clone(), "soup", ExtractOptions::new()).expect("flat");
        let par = extract_flat(flat, "soup", ExtractOptions::new().with_threads(threads))
            .expect("banded");
        prop_assert_eq!(seq.netlist.device_count(), par.netlist.device_count());
        if seq.report.multi_terminal_devices == 0 {
            if let Err(d) = same_circuit(&seq.netlist, &par.netlist) {
                return Err(TestCaseError::fail(format!("K={threads}: {d}")));
            }
        }
    }

    /// Parasitic totals are an exact union computation: they must not
    /// depend on thread count, band cut placement, or feed order.
    #[test]
    fn parasitic_totals_are_invariant_under_banding(
        boxes in prop::collection::vec((layer(), aligned_rect()), 1..24),
        threads in 2usize..6,
        cut_lambda in 1i64..23,
        seed in any::<u64>(),
    ) {
        use ace_conformance::parasitic_signature;
        use rand::{Rng as _, SeedableRng as _};

        let mut flat = FlatLayout::new();
        for (l, r) in &boxes {
            flat.push_box(*l, *r);
        }
        let signature = |e: &Extraction| {
            let mut nl = e.netlist.clone();
            nl.prune_floating_nets();
            parasitic_signature(&nl)
        };
        let seq = extract_flat(flat.clone(), "soup", ExtractOptions::new()).expect("flat");
        let expect = signature(&seq);

        let par = extract_flat(flat.clone(), "soup", ExtractOptions::new().with_threads(threads))
            .expect("banded");
        prop_assert_eq!(&expect, &signature(&par), "K={}", threads);

        // A cut is only meaningful strictly inside the layout's
        // vertical extent.
        let bb = flat.bounding_box().expect("non-empty layout");
        let cut_at = cut_lambda * LAMBDA;
        if bb.y_min < cut_at && cut_at < bb.y_max {
            let cut = extract_banded(flat.clone(), "soup", ExtractOptions::new(), &[cut_at])
                .expect("cut");
            prop_assert_eq!(&expect, &signature(&cut), "cut at {}λ", cut_lambda);
        }

        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut shuffled_boxes = boxes.clone();
        for i in (1..shuffled_boxes.len()).rev() {
            shuffled_boxes.swap(i, rng.gen_range(0..i + 1));
        }
        let mut shuffled = FlatLayout::new();
        for (l, r) in &shuffled_boxes {
            shuffled.push_box(*l, *r);
        }
        let reordered = extract_flat(shuffled, "soup", ExtractOptions::new()).expect("flat");
        prop_assert_eq!(&expect, &signature(&reordered), "feed order");
    }
}

/// The shim's historic window-mode degrade (silently sequential) is
/// gone with it: the unified path *rejects* window + threads, and a
/// caller who wants a windowed extraction spells it without banding.
#[test]
fn window_plus_threads_is_rejected_not_degraded() {
    let flat = flat_of(&mesh_cif(4));
    let window = Rect::new(-LAMBDA, -LAMBDA, 20 * LAMBDA, 20 * LAMBDA);
    let windowed = ExtractOptions::new().with_window(window).with_threads(4);
    let err = extract_flat(flat.clone(), "w", windowed).unwrap_err();
    assert!(err.to_string().contains("invalid extraction options"));
    // The unbanded spelling still works and stays sequential.
    let seq = extract_flat(flat, "w", ExtractOptions::new().with_window(window)).expect("flat");
    assert_eq!(seq.report.threads, 0, "sequential run reports no workers");
    assert!(seq.window.is_some());
}
