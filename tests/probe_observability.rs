//! The probe layer's external contract: an outside `CounterProbe`
//! sees exactly the event stream the extractor's own report is built
//! from, the Chrome-trace sink emits a well-formed timeline with one
//! lane per band, and the summary sink's percentages add up.

use ace::prelude::*;
use ace::workloads::cells::inverter_cif;
use ace::workloads::mesh::mesh_cif;

fn flat_of(src: &str) -> FlatLayout {
    FlatLayout::from_library(&Library::from_cif_text(src).expect("valid CIF"))
}

/// The integer counters an [`ExtractionReport`] is a view over. Span
/// *durations* are measured by independent clocks on the two sides,
/// so only the counters are compared exactly.
fn assert_counters_match(probe: &CounterProbe, report: &ExtractionReport, what: &str) {
    assert_eq!(probe.total(Counter::Boxes), report.boxes, "{what}: boxes");
    assert_eq!(
        probe.total(Counter::ScanlineStops),
        report.scanline_stops,
        "{what}: stops"
    );
    assert_eq!(
        probe.total(Counter::Fragments),
        report.fragments,
        "{what}: fragments"
    );
    assert_eq!(
        probe.total(Counter::NetUnions) + probe.total(Counter::SeamNetUnions),
        report.net_unions,
        "{what}: net unions"
    );
    assert_eq!(
        probe.total(Counter::UnresolvedLabels),
        report.unresolved_labels,
        "{what}: unresolved labels"
    );
    assert_eq!(
        probe.total(Counter::MultiTerminalDevices),
        report.multi_terminal_devices,
        "{what}: multi-terminal devices"
    );
    assert_eq!(
        probe.peak(Counter::MaxActive) as usize,
        report.max_active,
        "{what}: max active"
    );
}

#[test]
fn counter_probe_agrees_with_the_report_on_the_inverter() {
    let probe = CounterProbe::new();
    let r = extract_text_probed(&inverter_cif(), ExtractOptions::new(), &probe)
        .expect("inverter extracts");
    assert!(r.report.boxes > 0);
    assert_counters_match(&probe, &r.report, "inverter");
    // The probe's own report view reproduces the same counters too.
    assert_counters_match(&probe, &probe.report(), "inverter view");
}

#[test]
fn counter_probe_agrees_with_the_report_on_a_banded_mesh() {
    let probe = CounterProbe::new();
    let r = extract_flat_probed(
        flat_of(&mesh_cif(6)),
        "mesh",
        ExtractOptions::new().with_threads(3),
        &probe,
    )
    .expect("mesh extracts");
    assert!(r.report.threads >= 2, "mesh should band");
    assert_counters_match(&probe, &r.report, "banded mesh");
    // Band lanes showed up as separate lanes on the external probe.
    let bands = probe
        .lanes()
        .into_iter()
        .filter(|&l| l != Lane::MAIN)
        .count();
    assert_eq!(bands, r.report.threads, "one lane per band");
    // Stitch counters flow through as well.
    assert_eq!(
        probe.total(Counter::SeamContacts),
        r.report.stitch.seam_contacts
    );
    assert_eq!(
        probe.total(Counter::PairsMatched),
        r.report.stitch.pairs_matched
    );
}

#[test]
fn chrome_trace_schema_is_valid_for_a_banded_run() {
    let trace = ChromeTraceProbe::new();
    let r = extract_flat_probed(
        flat_of(&mesh_cif(6)),
        "mesh",
        ExtractOptions::new().with_threads(3),
        &trace,
    )
    .expect("mesh extracts");
    assert!(r.report.threads >= 2, "mesh should band");

    let events = trace.events();
    assert!(!events.is_empty());

    // Every event is a B or an E; per tid they nest like brackets,
    // with matching names, non-decreasing timestamps per lane.
    let mut stacks: std::collections::BTreeMap<u32, Vec<&'static str>> = Default::default();
    let mut last_ts: std::collections::BTreeMap<u32, u64> = Default::default();
    for e in &events {
        let prev = last_ts.entry(e.tid).or_insert(0);
        assert!(e.ts_us >= *prev, "timestamps go backwards on tid {}", e.tid);
        *prev = e.ts_us;
        let stack = stacks.entry(e.tid).or_default();
        match e.phase {
            'B' => stack.push(e.name),
            'E' => assert_eq!(stack.pop(), Some(e.name), "unbalanced E on tid {}", e.tid),
            other => panic!("unexpected phase {other:?}"),
        }
    }
    for (tid, stack) in &stacks {
        assert!(stack.is_empty(), "unclosed spans {stack:?} on tid {tid}");
    }

    // One band-sweep lane per band, distinct from the main lane, plus
    // a stitch span on the main lane.
    let band_tids: std::collections::BTreeSet<u32> = events
        .iter()
        .filter(|e| e.name == Span::Band.name())
        .map(|e| e.tid)
        .collect();
    assert_eq!(band_tids.len(), r.report.threads, "one tid per band");
    assert!(!band_tids.contains(&Lane::MAIN.0));
    assert!(
        events
            .iter()
            .any(|e| e.name == Span::Stitch.name() && e.tid == Lane::MAIN.0),
        "stitch span missing"
    );

    // The serialized form is a Chrome-trace object with a
    // `traceEvents` array, thread-name metadata, and one constant pid.
    let json = trace.to_json();
    assert!(json.trim_start().starts_with("{\"traceEvents\":["));
    assert!(json.trim_end().ends_with("]}"));
    for key in [
        "\"name\"", "\"ph\"", "\"ts\"", "\"pid\"", "\"tid\"", "\"cat\"",
    ] {
        assert!(json.contains(key), "missing {key}");
    }
    assert!(
        json.contains("\"ph\":\"M\""),
        "thread-name metadata missing"
    );
    assert!(json.contains("\"name\":\"main\""), "main lane unnamed");
    assert!(json.contains("\"name\":\"band 0\""), "band lane unnamed");
    assert!(json.contains("\"pid\":1"), "pid missing");
    assert!(!json.contains("\"pid\":2"), "more than one pid");
}

#[test]
fn summary_probe_percentages_sum_to_100() {
    let summary = SummaryProbe::new();
    let _ = extract_text_probed(&inverter_cif(), ExtractOptions::new(), &summary)
        .expect("inverter extracts");
    let total: f64 = Phase::ALL.iter().map(|&p| summary.phase_percent(p)).sum();
    assert!((total - 100.0).abs() < 1e-6, "phases sum to {total}");
    let table = summary.table();
    for phase in Phase::ALL {
        assert!(table.contains(phase.label()), "{} missing", phase.label());
    }
}
