//! Property-based tests over the whole pipeline.
//!
//! The geometry strategies cover all six mask layers (diffusion,
//! poly, metal, cut, implant, buried) and, via the `soup` helpers,
//! CIF `94` net labels at backend-safe sites. Failure cases that
//! proptest shrank in the past are promoted to the explicit
//! `regression_*` tests at the bottom (see the note in
//! `proptests.proptest-regressions`).

use ace::core::{extract_flat, ExtractOptions};
use ace::geom::{
    fracture_polygon, merge_boxes, union_area, Interval, IntervalSet, Layer, Point, Polygon, Rect,
    LAMBDA,
};
use ace::layout::{FlatLayout, Library};
use ace::raster::extract_partlist;
use ace::wirelist::compare::{same_circuit, structural_signature};
use ace::workloads::soup::{boxes_to_cif, label_sites, with_labels};
use proptest::prelude::*;

/// λ-aligned rectangles in a small region.
fn aligned_rect() -> impl Strategy<Value = Rect> {
    (0i64..24, 0i64..24, 1i64..8, 1i64..8).prop_map(|(x, y, w, h)| {
        Rect::new(x * LAMBDA, y * LAMBDA, (x + w) * LAMBDA, (y + h) * LAMBDA)
    })
}

fn layer() -> impl Strategy<Value = Layer> {
    prop_oneof![
        4 => Just(Layer::Diffusion),
        4 => Just(Layer::Poly),
        3 => Just(Layer::Metal),
        1 => Just(Layer::Cut),
        1 => Just(Layer::Implant),
        1 => Just(Layer::Buried),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_boxes_preserves_area_and_disjointness(
        boxes in prop::collection::vec(aligned_rect(), 0..24)
    ) {
        let merged = merge_boxes(&boxes);
        // Disjoint.
        for (i, a) in merged.iter().enumerate() {
            for b in &merged[i + 1..] {
                prop_assert!(!a.overlaps(b), "{a} overlaps {b}");
            }
        }
        // Same coverage.
        prop_assert_eq!(union_area(&boxes), merged.iter().map(Rect::area).sum::<i64>());
        // Merging is idempotent.
        prop_assert_eq!(union_area(&merged), union_area(&boxes));
    }

    #[test]
    fn interval_set_matches_brute_force(
        a in prop::collection::vec((0i64..64, 1i64..16), 0..12),
        b in prop::collection::vec((0i64..64, 1i64..16), 0..12),
    ) {
        let build = |v: &[(i64, i64)]| -> IntervalSet {
            v.iter().map(|&(lo, len)| Interval::new(lo, lo + len)).collect()
        };
        let sa = build(&a);
        let sb = build(&b);
        // Brute force over unit cells.
        let covered = |s: &IntervalSet, x: i64| s.contains(x);
        for x in 0..96 {
            let ia = covered(&sa, x);
            let ib = covered(&sb, x);
            prop_assert_eq!(sa.intersection(&sb).contains(x), ia && ib, "∩ at {}", x);
            prop_assert_eq!(sa.subtract(&sb).contains(x), ia && !ib, "− at {}", x);
            prop_assert_eq!(sa.union(&sb).contains(x), ia || ib, "∪ at {}", x);
        }
        prop_assert_eq!(
            sa.total_len() + sb.total_len(),
            sa.union(&sb).total_len() + sa.intersection(&sb).total_len()
        );
    }

    #[test]
    fn manhattan_polygon_fracture_is_exact(
        steps in prop::collection::vec((1i64..5, 1i64..5), 1..5)
    ) {
        // Build a monotone staircase polygon from the steps.
        let mut verts = vec![Point::new(0, 0)];
        let mut x = 0;
        let mut y = 0;
        for &(dx, dy) in &steps {
            x += dx * LAMBDA;
            verts.push(Point::new(x, y));
            y += dy * LAMBDA;
            verts.push(Point::new(x, y));
        }
        verts.push(Point::new(0, y));
        let poly = Polygon::new(verts);
        prop_assert!(poly.is_manhattan());
        let boxes = fracture_polygon(&poly, LAMBDA);
        let area: i64 = boxes.iter().map(Rect::area).sum();
        prop_assert_eq!(area * 2, poly.signed_area_doubled().abs());
        // Fragments are disjoint.
        prop_assert_eq!(union_area(&boxes), area);
    }

    #[test]
    fn extraction_is_invariant_under_box_order(
        boxes in prop::collection::vec((layer(), aligned_rect()), 1..20),
        seed in any::<u64>(),
    ) {
        let mut flat_a = FlatLayout::new();
        for (l, r) in &boxes {
            flat_a.push_box(*l, *r);
        }
        // A deterministic shuffle of the same boxes.
        let mut shuffled = boxes.clone();
        let mut state = seed | 1;
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            shuffled.swap(i, (state >> 33) as usize % (i + 1));
        }
        let mut flat_b = FlatLayout::new();
        for (l, r) in &shuffled {
            flat_b.push_box(*l, *r);
        }
        let a = extract_flat(flat_a, "a", ExtractOptions::new()).expect("extracts");
        let b = extract_flat(flat_b, "b", ExtractOptions::new()).expect("extracts");
        prop_assert_eq!(a.netlist.device_count(), b.netlist.device_count());
        prop_assert_eq!(
            structural_signature(&a.netlist),
            structural_signature(&b.netlist)
        );
    }

    #[test]
    fn scanline_and_raster_extract_the_same_circuit(
        boxes in prop::collection::vec((layer(), aligned_rect()), 1..20)
    ) {
        let mut flat = FlatLayout::new();
        for (l, r) in &boxes {
            flat.push_box(*l, *r);
        }
        let ace = extract_flat(flat.clone(), "x", ExtractOptions::new()).expect("extracts");
        let raster = extract_partlist(&flat, "x", LAMBDA);
        prop_assert_eq!(ace.netlist.device_count(), raster.netlist.device_count());
        if ace.report.multi_terminal_devices == 0 {
            // With ≤2 terminals per device the circuits must match
            // exactly (ties among >2 terminals may be broken
            // differently by the two algorithms).
            if let Err(d) = same_circuit(&ace.netlist, &raster.netlist) {
                return Err(TestCaseError::fail(format!("{d}")));
            }
        }
    }

    #[test]
    fn cif_round_trip_random_boxes(
        boxes in prop::collection::vec((layer(), aligned_rect()), 0..20)
    ) {
        let mut w = ace::cif::CifWriter::new();
        for (l, r) in &boxes {
            w.rect_on(*l, *r);
        }
        let text = w.finish();
        let parsed = ace::cif::parse(&text).expect("writer output parses");
        let re_text = ace::cif::write_cif(&parsed);
        prop_assert_eq!(parsed, ace::cif::parse(&re_text).expect("round trip"));
    }

    #[test]
    fn hierarchical_equals_flat_on_random_placements(
        placements in prop::collection::vec((0i64..12, 0i64..12), 1..9),
        loose in prop::collection::vec((layer(), aligned_rect()), 0..6),
    ) {
        // A fixed transistor cell placed at random grid positions
        // (overlaps allowed — the clusterer must cope), plus loose
        // geometry that the slicer will cut.
        let mut w = ace::cif::CifWriter::new();
        w.begin_symbol(1);
        w.rect_on(Layer::Diffusion, Rect::new(250, 0, 750, 1500));
        w.rect_on(Layer::Poly, Rect::new(0, 500, 1500, 1000));
        w.end_symbol();
        for &(gx, gy) in &placements {
            w.call(1, gx * 1000, gy * 1000);
        }
        for (l, r) in &loose {
            w.rect_on(*l, *r);
        }
        let src = w.finish();
        let lib = ace::layout::Library::from_cif_text(&src).expect("valid");
        let flat = ace::core::extract_library(&lib, "x", ExtractOptions::new()).expect("extracts");
        let hext = ace::hext::extract_hierarchical(&lib, "x");
        let mut a = flat.netlist.clone();
        let mut b = hext.hier.flatten();
        a.prune_floating_nets();
        b.prune_floating_nets();
        prop_assert_eq!(a.device_count(), b.device_count());
        if flat.report.multi_terminal_devices == 0 {
            if let Err(d) = same_circuit(&a, &b) {
                return Err(TestCaseError::fail(format!("{d}")));
            }
        }
    }

    #[test]
    fn labels_resolve_identically_across_all_backends(
        boxes in prop::collection::vec((layer(), aligned_rect()), 1..16),
        count in 1usize..5,
    ) {
        // Decorate a random soup with `94` labels at backend-safe
        // sites (interior points of conducting boxes, never on a
        // channel), uniquely named, and demand full agreement —
        // wiring AND name bindings — from all five backends.
        let bare = boxes_to_cif(&boxes);
        let lib = Library::from_cif_text(&bare).expect("soup parses");
        let flat = ace::layout::FlatLayout::from_library(&lib);
        let sites = label_sites(&flat, count);
        let labels: Vec<(String, Point, Layer)> = sites
            .into_iter()
            .enumerate()
            .map(|(i, (at, l))| (format!("sig{i}"), at, l))
            .collect();
        let cif = with_labels(&bare, &labels);
        let lib = Library::from_cif_text(&cif).expect("labeled soup parses");
        use ace::conformance::{check_agreement, BackendId};
        match check_agreement(&lib, &BackendId::ALL) {
            Err(e) => return Err(TestCaseError::fail(format!("extraction failed: {e}"))),
            Ok(Some(d)) => return Err(TestCaseError::fail(format!("{d}"))),
            Ok(None) => {}
        }
        // Every label sits on a resolvable net, so the reference must
        // bind each unique name.
        let reference =
            ace::core::extract_library(&lib, "labels", ExtractOptions::new()).expect("extracts");
        let names = reference.netlist.name_table();
        for (name, _, _) in &labels {
            prop_assert!(names.contains_key(name.as_str()), "label {} unresolved", name);
        }
    }

    #[test]
    fn label_binding_is_invariant_under_box_order(
        boxes in prop::collection::vec((layer(), aligned_rect()), 1..16),
        seed in any::<u64>(),
    ) {
        // `label_sites` sorts its result, so the same labels land on
        // the same geometry regardless of box order; extraction must
        // then bind each name to the same circuit position.
        let sites_of = |list: &[(Layer, Rect)]| {
            let cif = boxes_to_cif(list);
            let lib = Library::from_cif_text(&cif).expect("parses");
            label_sites(&ace::layout::FlatLayout::from_library(&lib), 4)
        };
        let mut shuffled = boxes.clone();
        let mut state = seed | 1;
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            shuffled.swap(i, (state >> 33) as usize % (i + 1));
        }
        prop_assert_eq!(sites_of(&boxes), sites_of(&shuffled));

        let extract_with_labels = |list: &[(Layer, Rect)]| {
            let bare = boxes_to_cif(list);
            let labels: Vec<(String, Point, Layer)> = sites_of(list)
                .into_iter()
                .enumerate()
                .map(|(i, (at, l))| (format!("n{i}"), at, l))
                .collect();
            let lib = Library::from_cif_text(&with_labels(&bare, &labels)).expect("parses");
            ace::core::extract_library(&lib, "x", ExtractOptions::new()).expect("extracts")
        };
        let a = extract_with_labels(&boxes);
        let b = extract_with_labels(&shuffled);
        if a.report.multi_terminal_devices == 0 {
            // same_circuit includes the name-consistency check.
            if let Err(d) = same_circuit(&a.netlist, &b.netlist) {
                return Err(TestCaseError::fail(format!("{d}")));
            }
        }
    }
}

// ---------------------------------------------------------------
// Promoted regressions. The vendored proptest stub does not replay
// `proptests.proptest-regressions`, so shrunken failure cases are
// pinned here as explicit tests instead.
// ---------------------------------------------------------------

/// Regression (cc 6b3ff9b1…): two overlapping placements of the
/// transistor cell plus one loose diffusion box that merges their
/// terminals across instance boundaries — once mis-clustered by the
/// hierarchical extractor.
#[test]
fn regression_hext_overlapping_placements_with_bridging_diffusion() {
    let mut w = ace::cif::CifWriter::new();
    w.begin_symbol(1);
    w.rect_on(Layer::Diffusion, Rect::new(250, 0, 750, 1500));
    w.rect_on(Layer::Poly, Rect::new(0, 500, 1500, 1000));
    w.end_symbol();
    for (gx, gy) in [(4i64, 1i64), (2, 0)] {
        w.call(1, gx * 1000, gy * 1000);
    }
    w.rect_on(Layer::Diffusion, Rect::new(1250, 0, 2250, 1250));
    let src = w.finish();
    let lib = Library::from_cif_text(&src).expect("valid");
    let flat = ace::core::extract_library(&lib, "x", ExtractOptions::new()).expect("extracts");
    let hext = ace::hext::extract_hierarchical(&lib, "x");
    let mut a = flat.netlist.clone();
    let mut b = hext.hier.flatten();
    a.prune_floating_nets();
    b.prune_floating_nets();
    assert_eq!(a.device_count(), b.device_count());
    if flat.report.multi_terminal_devices == 0 {
        same_circuit(&a, &b).unwrap();
    }
}

/// Regression (cc 02a6c492…): two diffusion strips under one wide cut
/// and a poly stub — a shape where the scanline and run-encoded
/// raster extractors once disagreed on the device census.
#[test]
fn regression_partlist_cut_spanning_two_diffusions() {
    let boxes = [
        (Layer::Diffusion, Rect::new(2500, 2500, 2750, 4250)),
        (Layer::Diffusion, Rect::new(750, 2250, 1500, 3750)),
        (Layer::Cut, Rect::new(0, 2000, 1500, 3750)),
        (Layer::Poly, Rect::new(1000, 2000, 1250, 2500)),
    ];
    let mut flat = FlatLayout::new();
    for (l, r) in &boxes {
        flat.push_box(*l, *r);
    }
    let ace = extract_flat(flat.clone(), "x", ExtractOptions::new()).expect("extracts");
    let raster = extract_partlist(&flat, "x", LAMBDA);
    assert_eq!(ace.netlist.device_count(), raster.netlist.device_count());
    if ace.report.multi_terminal_devices == 0 {
        same_circuit(&ace.netlist, &raster.netlist).unwrap();
    }
}
