//! Allocation discipline of the flat sweep: after warm-up, the stop
//! loop must run out of the [`SweepScratch`] arena and the amortized
//! growth of the net/fragment tables — O(1) allocations per stop, not
//! O(layers) or O(active boxes) per stop as the old per-stop `Vec`
//! rebuild did.
//!
//! The workload is a single vertical chain of overlapping metal boxes:
//! every box adds two scanline stops but the output stays one net and
//! zero devices, so any allocation growth beyond `Vec` doubling is a
//! per-stop allocation in the hot path. This file holds exactly one
//! test because the counting `#[global_allocator]` is process-global.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use ace_core::{extract_flat, ExtractOptions};
use ace_layout::{FlatLayout, Library};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// `n` metal boxes stacked vertically, each overlapping the next:
/// one net, no devices, `2n` distinct scanline stops.
fn stacked_cif(n: i64) -> String {
    let mut cif = String::from("L NM;");
    for i in 0..n {
        // 400 tall at a 300 pitch: consecutive boxes overlap by 100.
        cif.push_str(&format!(" B 400 400 0 {};", i * 300));
    }
    cif.push_str(" E");
    cif
}

fn flat(n: i64) -> FlatLayout {
    let lib = Library::from_cif_text(&stacked_cif(n)).expect("stack CIF parses");
    FlatLayout::from_library(&lib)
}

/// Allocations made while extracting `flat`, excluding layout
/// construction and the result's drop.
fn allocs_during_extract(flat: &FlatLayout) -> u64 {
    let input = flat.clone();
    ALLOCS.store(0, Ordering::Relaxed);
    COUNTING.store(true, Ordering::Relaxed);
    let result = extract_flat(input, "stack", ExtractOptions::new()).expect("stack extracts");
    COUNTING.store(false, Ordering::Relaxed);
    assert_eq!(result.netlist.device_count(), 0);
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn flat_sweep_allocates_o1_per_stop() {
    let small = flat(64);
    let large = flat(512);

    // Warm-up: fault in lazily initialized runtime state so neither
    // counted run pays one-time costs.
    allocs_during_extract(&small);
    allocs_during_extract(&large);

    let small_allocs = allocs_during_extract(&small);
    let large_allocs = allocs_during_extract(&large);
    assert!(small_allocs > 0, "counting allocator saw nothing");

    // 448 extra boxes add 896 extra stops. If the hot path allocated
    // even once per stop the delta would exceed that; amortized `Vec`
    // doubling across the whole run is a few dozen allocations.
    let extra_stops = 2 * (512 - 64) as u64;
    let delta = large_allocs.saturating_sub(small_allocs);
    assert!(
        delta < extra_stops,
        "sweep allocates per stop: {small_allocs} allocs at 64 boxes vs \
         {large_allocs} at 512 ({delta} extra for {extra_stops} extra stops)"
    );
}
