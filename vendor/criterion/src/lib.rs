//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach the crates registry, so this
//! vendored stub provides the subset of criterion's API the workspace
//! benches use: `criterion_group!`/`criterion_main!`, benchmark groups
//! with `sample_size`/`throughput`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, and `Bencher::iter`. It measures
//! wall time with `std::time::Instant` and prints mean/min per
//! benchmark instead of criterion's full statistical analysis.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level driver handed to each `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
        }
    }
}

/// Units processed per iteration, reported as a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        self.samples.push(start.elapsed());
    }
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), |b| routine(b));
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), |b| routine(b, input));
        self
    }

    fn run(&mut self, id: &str, mut routine: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size + 1),
        };
        // One untimed warmup call, then the recorded samples.
        routine(&mut bencher);
        bencher.samples.clear();
        for _ in 0..self.sample_size {
            routine(&mut bencher);
        }
        let n = bencher.samples.len().max(1) as u32;
        let total: Duration = bencher.samples.iter().sum();
        let mean = total / n;
        let min = bencher.samples.iter().min().copied().unwrap_or_default();
        let rate = match self.throughput {
            Some(Throughput::Elements(e)) if mean.as_secs_f64() > 0.0 => {
                format!("  {:>12.0} elem/s", e as f64 / mean.as_secs_f64())
            }
            Some(Throughput::Bytes(b)) if mean.as_secs_f64() > 0.0 => {
                format!("  {:>12.0} B/s", b as f64 / mean.as_secs_f64())
            }
            _ => String::new(),
        };
        println!(
            "{}/{id}: mean {mean:?}, min {min:?} over {n} samples{rate}",
            self.name
        );
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("stub");
        g.sample_size(3);
        g.throughput(Throughput::Elements(10));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_every_benchmark() {
        benches();
    }

    #[test]
    fn benchmark_ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("mesh").to_string(), "mesh");
    }
}
