//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach the crates registry, so this
//! vendored stub implements the subset of proptest's API the workspace
//! tests use: the `proptest!` macro (with `proptest_config`), the
//! [`Strategy`] trait with `prop_map`, integer-range / tuple / `Just`
//! strategies, `prop::collection::vec`, `prop::sample::select`,
//! weighted `prop_oneof!`, `any::<T>()`, and the `prop_assert*` macros.
//!
//! Differences from the real crate: case generation is seeded
//! deterministically from the test name (fully reproducible runs), and
//! there is no shrinking — a failing case reports its index and the
//! assertion message instead of a minimized input.

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::rc::Rc;

/// Deterministic generator feeding the strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng(seed)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[lo, hi)`; spans here are far below 2^64 so
    /// modulo bias is negligible.
    pub fn int_in(&mut self, lo: i128, hi: i128) -> i128 {
        assert!(lo < hi, "empty strategy range");
        let span = (hi - lo) as u128;
        lo + ((self.next_u64() as u128) % span) as i128
    }
}

/// A generator of values of one type.
///
/// Unlike real proptest there is no value tree: strategies produce
/// plain values and failures are not shrunk.
pub trait Strategy: Sized {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Type-erased strategy, as produced by [`Strategy::boxed`].
pub struct BoxedStrategy<V>(Rc<dyn DynStrategy<V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// A strategy that always yields one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice among strategies of one value type; the expansion
/// of `prop_oneof!`.
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total: u64 = arms.iter().map(|&(w, _)| w as u64).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        Union { arms, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.next_u64() % self.total;
        for (w, strat) in &self.arms {
            if pick < *w as u64 {
                return strat.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("pick < total by construction")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.int_in(self.start as i128, self.end as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical whole-domain strategy, for `any::<T>()`.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over a type's whole domain.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

pub mod collection {
    use super::{Strategy, TestRng};

    /// Output of [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: core::ops::Range<usize>,
    }

    /// A `Vec` of values from `elem`, with a length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.int_in(self.size.start as i128, self.size.end as i128) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use super::{Strategy, TestRng};

    /// Output of [`select`].
    pub struct Select<T: Clone>(Vec<T>);

    /// Uniform choice from a fixed list.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select() needs a non-empty list");
        Select(items)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.next_u64() as usize % self.0.len()].clone()
        }
    }
}

/// Runner configuration; only the case count is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    Fail(String),
    Reject(String),
}

impl TestCaseError {
    pub fn fail<S: Into<String>>(reason: S) -> Self {
        TestCaseError::Fail(reason.into())
    }

    pub fn reject<S: Into<String>>(reason: S) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "{r}"),
            TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

pub type TestCaseResult = Result<(), TestCaseError>;

/// Drives the generated `#[test]` functions; one instance per test.
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config }
    }

    pub fn run<S, F>(self, name: &str, strategy: S, test: F)
    where
        S: Strategy,
        F: Fn(S::Value) -> TestCaseResult,
    {
        // FNV-1a over the test name keeps distinct tests on distinct
        // deterministic streams.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed = (seed ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        for case in 0..self.config.cases {
            let mut rng = TestRng::new(seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            match test(strategy.generate(&mut rng)) {
                Ok(()) | Err(TestCaseError::Reject(_)) => {}
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest '{name}' failed at case {case}:\n{msg}")
                }
            }
        }
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_cases {
    ($cfg:expr; $($(#[$meta:meta])+ fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::TestRunner::new(config).run(
                    stringify!($name),
                    ($($strat,)+),
                    |($($arg,)+)| {
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}\n{}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
                stringify!($left),
                stringify!($right),
                left,
                right,
                format!($($fmt)+)
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $( ($weight as u32, $crate::Strategy::boxed($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $( (1u32, $crate::Strategy::boxed($strat)) ),+
        ])
    };
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult, TestRng,
        TestRunner,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small() -> impl Strategy<Value = i64> {
        prop_oneof![3 => Just(1i64), 1 => Just(100i64)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(v in (0i64..10, 1u32..5), n in 3usize..4) {
            prop_assert!(v.0 >= 0 && v.0 < 10);
            prop_assert!(v.1 >= 1 && v.1 < 5, "got {}", v.1);
            prop_assert_eq!(n, 3);
        }

        #[test]
        fn collections_and_oneof(
            xs in prop::collection::vec(small(), 0..8),
            pick in prop::sample::select(vec![2i64, 4, 6]),
            raw in any::<u64>(),
        ) {
            prop_assert!(xs.len() < 8);
            prop_assert!(xs.iter().all(|&x| x == 1 || x == 100));
            prop_assert_eq!(pick % 2, 0);
            let _ = raw;
        }
    }

    #[test]
    #[should_panic(expected = "assertion failed")]
    fn failures_panic_with_the_message() {
        TestRunner::new(ProptestConfig::with_cases(4)).run("f", (0i64..5,), |(x,)| {
            prop_assert!(x < 0, "x was {x}");
            Ok(())
        });
    }
}
