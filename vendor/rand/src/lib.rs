//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to the crates registry, so this
//! vendored stub provides exactly the subset of the `rand 0.8` API the
//! workspace uses: the [`Rng`]/[`RngCore`]/[`SeedableRng`] traits,
//! integer `gen_range`, and [`distributions::WeightedIndex`]. The
//! generated streams are deterministic per seed but do **not** match
//! upstream `rand`'s bit streams; nothing in the workspace depends on
//! the exact stream, only on determinism and uniformity.

#![forbid(unsafe_code)]

use core::ops::Range;

/// Core random-number source: a full-width 64-bit output per call.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Integer types usable with [`Rng::gen_range`].
pub trait SampleUniform: Copy {
    fn sample_in(raw: u64, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in(raw: u64, range: Range<Self>) -> Self {
                assert!(
                    range.start < range.end,
                    "gen_range called with empty range"
                );
                let span = (range.end as i128 - range.start as i128) as u128;
                // Modulo bias is negligible for the small spans used
                // in this workspace (span << 2^64).
                let off = (raw as u128) % span;
                (range.start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// User-facing extension trait, blanket-implemented for every source.
pub trait Rng: RngCore {
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_in(self.next_u64(), range)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod distributions {
    use super::RngCore;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Error from constructing a [`WeightedIndex`].
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum WeightedError {
        NoItem,
        InvalidWeight,
        AllWeightsZero,
    }

    impl core::fmt::Display for WeightedError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            let msg = match self {
                WeightedError::NoItem => "no weights provided",
                WeightedError::InvalidWeight => "invalid weight",
                WeightedError::AllWeightsZero => "all weights are zero",
            };
            f.write_str(msg)
        }
    }

    /// Samples indexes `0..n` proportionally to the given weights.
    #[derive(Debug, Clone)]
    pub struct WeightedIndex {
        cumulative: Vec<u64>,
    }

    impl WeightedIndex {
        pub fn new<I>(weights: I) -> Result<Self, WeightedError>
        where
            I: IntoIterator,
            I::Item: Into<u64>,
        {
            let mut cumulative = Vec::new();
            let mut total = 0u64;
            for w in weights {
                total = total
                    .checked_add(w.into())
                    .ok_or(WeightedError::InvalidWeight)?;
                cumulative.push(total);
            }
            if cumulative.is_empty() {
                return Err(WeightedError::NoItem);
            }
            if total == 0 {
                return Err(WeightedError::AllWeightsZero);
            }
            Ok(WeightedIndex { cumulative })
        }

        fn total(&self) -> u64 {
            *self.cumulative.last().expect("non-empty by construction")
        }
    }

    impl Distribution<usize> for WeightedIndex {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            let x = rng.next_u64() % self.total();
            // First cumulative weight strictly greater than x.
            self.cumulative.partition_point(|&c| c <= x)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, WeightedIndex};
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(1);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn weighted_index_respects_zero_weights() {
        let w = WeightedIndex::new([0u32, 10, 0, 1]).unwrap();
        let mut rng = Counter(7);
        let mut seen = [0u32; 4];
        for _ in 0..2000 {
            seen[w.sample(&mut rng)] += 1;
        }
        assert_eq!(seen[0], 0);
        assert_eq!(seen[2], 0);
        assert!(seen[1] > seen[3]);
    }

    #[test]
    fn weighted_index_rejects_degenerate_input() {
        assert!(WeightedIndex::new(Vec::<u32>::new()).is_err());
        assert!(WeightedIndex::new([0u32, 0]).is_err());
    }
}
