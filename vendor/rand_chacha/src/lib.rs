//! Offline stand-in for the `rand_chacha` crate.
//!
//! Provides [`ChaCha8Rng`] with the `rand` trait surface the workspace
//! uses (`SeedableRng::seed_from_u64` + `RngCore`). The core is a real
//! ChaCha8 block function, so statistical quality matches the genuine
//! article; the exact stream differs from upstream (seed expansion and
//! word order are simplified), which is fine because the workspace only
//! relies on per-seed determinism.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    idx: usize,
}

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

fn chacha_block(key: &[u32; 8], counter: u64) -> [u32; 16] {
    let mut state = [
        0x6170_7865,
        0x3320_646e,
        0x7962_2d32,
        0x6b20_6574,
        key[0],
        key[1],
        key[2],
        key[3],
        key[4],
        key[5],
        key[6],
        key[7],
        counter as u32,
        (counter >> 32) as u32,
        0,
        0,
    ];
    let initial = state;
    for _ in 0..ROUNDS / 2 {
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    for (s, i) in state.iter_mut().zip(initial) {
        *s = s.wrapping_add(i);
    }
    state
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        self.buf = chacha_block(&self.key, self.counter);
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 expansion of the 64-bit seed into the 256-bit key.
        let mut s = state;
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            pair[0] = z as u32;
            pair[1] = (z >> 32) as u32;
        }
        let mut rng = ChaCha8Rng {
            key,
            counter: 0,
            buf: [0; 16],
            idx: 16,
        };
        rng.refill();
        rng
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        if self.idx + 2 > 16 {
            self.refill();
        }
        let lo = self.buf[self.idx] as u64;
        let hi = self.buf[self.idx + 1] as u64;
        self.idx += 2;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = ChaCha8Rng::seed_from_u64(42);
            (0..64).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = ChaCha8Rng::seed_from_u64(42);
            (0..64).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = ChaCha8Rng::seed_from_u64(43);
            (0..64).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn roughly_uniform_small_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut buckets = [0u32; 8];
        for _ in 0..8000 {
            buckets[rng.gen_range(0usize..8)] += 1;
        }
        for &b in &buckets {
            assert!((800..1200).contains(&b), "skewed bucket: {buckets:?}");
        }
    }
}
